"""The "Typical Delta-t Situations" figure (p. 106): F1.

The figure illustrates three timer-driven behaviours of the Delta-t
protocol; we reproduce each as a scripted scenario against live kernels
and return the event timeline:

* **S1 — take-any expiry**: after a message exchange, a receiver that
  hears nothing for ``MPL + Δt`` destroys its connection record and will
  accept any sequence number again.
* **S2 — duplicate suppression**: while the record lives, a
  retransmitted (duplicate) sequence number is discarded and re-acked,
  not redelivered.
* **S3 — crash quiet period**: a crashed node stays silent for
  ``2·MPL + Δt`` before rejoining, by which time all old traffic has
  died out; communication then resumes with no explicit reconnection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.client import ClientProgram
from repro.core.config import KernelConfig
from repro.core.node import Network
from repro.core.patterns import make_well_known_pattern
from repro.transport.deltat import DeltaTConfig, DeltaTState

PATTERN = make_well_known_pattern(0o310)


@dataclass
class ScenarioResult:
    name: str
    events: List[Tuple[float, str]] = field(default_factory=list)
    ok: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for ``BENCH_*.json`` snapshots."""
        return {
            "name": self.name,
            "ok": self.ok,
            "events": [
                {"at_ms": at_ms, "event": text} for at_ms, text in self.events
            ],
        }


class _Echo(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            yield from api.accept_current_signal()


class _Pinger(ClientProgram):
    """Sends one SIGNAL, then another on demand."""

    def __init__(self):
        self.done = []

    def task(self, api):
        self.api = api
        sig = api.server_sig(0, PATTERN)
        completion = yield from api.b_signal(sig)
        self.done.append((api.now, completion.status.value))
        yield from api.poll(lambda: getattr(self, "go_again", False))
        self.go_again = False
        completion = yield from api.b_signal(sig)
        self.done.append((api.now, completion.status.value))
        yield from api.serve_forever()


def _scenario_take_any(deltat: DeltaTConfig) -> ScenarioResult:
    result = ScenarioResult("S1 take-any expiry")
    net = Network(seed=5, config=KernelConfig(deltat=deltat))
    net.add_node(program=_Echo())
    pinger = _Pinger()
    net.add_node(program=pinger, boot_at_us=100.0)
    net.run(until=60_000.0)
    server_conn = net.nodes[0].kernel.connections.get(1)
    result.events.append((net.now / 1000.0, "exchange complete; record SYNCHRONIZED"))
    state_before = server_conn.recv_record.current_state(net.sim.now)
    # Silence for more than MPL + delta-t.
    quiet_until = net.sim.now + deltat.take_any_after_us + 10_000.0
    net.run(until=quiet_until)
    state_after = server_conn.recv_record.current_state(net.sim.now)
    result.events.append(
        (net.now / 1000.0, f"after {deltat.take_any_after_us/1000:.0f} ms of "
         f"silence: record {state_after.value}")
    )
    # New traffic with any sequence number is accepted.
    pinger.go_again = True
    net.run(until=net.sim.now + 60_000.0)
    result.events.append(
        (pinger.done[-1][0] / 1000.0, f"fresh exchange: {pinger.done[-1][1]}")
    )
    result.ok = (
        state_before is DeltaTState.SYNCHRONIZED
        and state_after is DeltaTState.TAKE_ANY
        and len(pinger.done) == 2
        and pinger.done[-1][1] == "completed"
    )
    return result


def _scenario_duplicate(deltat: DeltaTConfig) -> ScenarioResult:
    result = ScenarioResult("S2 duplicate suppression")
    net = Network(seed=6, config=KernelConfig(deltat=deltat))
    net.add_node(program=_Echo())
    pinger = _Pinger()
    net.add_node(program=pinger, boot_at_us=100.0)
    # Drop the server's first reply (ACCEPT+ACK): the requester will
    # retransmit its REQUEST, which the server must classify duplicate.
    drops = {"armed": True}

    def drop_first_accept(frame, receiver):
        from repro.transport.packet import PacketType

        if (
            drops["armed"]
            and frame.src == 0
            and getattr(frame.payload, "ptype", None) is PacketType.ACCEPT
        ):
            drops["armed"] = False
            result.events.append((net.now / 1000.0, "ACCEPT+ACK lost"))
            return True
        return False

    net.faults.add_drop_predicate(drop_first_accept)
    net.run(until=200_000.0)
    dup_records = [
        r for r in net.sim.trace.records
        if r.category == "conn.retransmit"
    ]
    arrivals = net.sim.trace.count("kernel.interrupt")
    result.events.append(
        (net.now / 1000.0,
         f"requester retransmitted {len(dup_records)} time(s); "
         f"exchange completed: {pinger.done[0][1] if pinger.done else 'no'}")
    )
    # The server handler must have been invoked exactly once for the
    # request despite the retransmission.
    server_arrivals = [
        r for r in net.sim.trace.records
        if r.category == "kernel.interrupt"
        and r["mid"] == 0
        and r["reason"] == "request_arrival"
    ]
    result.events.append(
        (net.now / 1000.0, f"server handler invocations: {len(server_arrivals)}")
    )
    result.ok = (
        len(dup_records) >= 1
        and len(server_arrivals) == 1
        and bool(pinger.done)
        and pinger.done[0][1] == "completed"
    )
    return result


def _scenario_crash_quiet(deltat: DeltaTConfig) -> ScenarioResult:
    result = ScenarioResult("S3 crash quiet period")
    net = Network(seed=7, config=KernelConfig(deltat=deltat))
    server_node = net.add_node(program=_Echo())
    pinger = _Pinger()
    net.add_node(program=pinger, boot_at_us=100.0)
    net.run(until=60_000.0)
    crash_at = net.sim.now
    server_node.crash()
    result.events.append((crash_at / 1000.0, "server node crashes"))
    quiet = deltat.crash_quiet_us
    result.events.append(
        (crash_at / 1000.0, f"quiet period: {quiet/1000:.0f} ms (2·MPL + Δt)")
    )
    recovered = {}

    def note_recovery():
        recovered["at"] = net.sim.now
        server_node.client = None
        server_node.install_program(_Echo(), boot_at_us=net.sim.now + 1_000.0)

    net.sim.schedule(quiet + 1.0, note_recovery)
    net.sim.schedule(quiet + 20_000.0, lambda: setattr(pinger, "go_again", True))
    net.run(until=crash_at + quiet + 20_000_000.0)
    offline_respected = recovered["at"] - crash_at >= quiet
    result.events.append((recovered["at"] / 1000.0, "node rejoins"))
    if len(pinger.done) == 2:
        result.events.append(
            (pinger.done[1][0] / 1000.0,
             f"post-recovery exchange: {pinger.done[1][1]}")
        )
    result.ok = (
        offline_respected
        and len(pinger.done) == 2
        and pinger.done[1][1] == "completed"
    )
    return result


def deltat_scenarios(deltat: DeltaTConfig = None) -> Dict[str, ScenarioResult]:
    """Run all three Delta-t scenarios; returns results by name."""
    deltat = deltat or DeltaTConfig(mpl_us=20_000.0, r_us=60_000.0, a_us=5_000.0)
    return {
        "take_any": _scenario_take_any(deltat),
        "duplicate": _scenario_duplicate(deltat),
        "crash_quiet": _scenario_crash_quiet(deltat),
    }
