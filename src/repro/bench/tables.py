"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
