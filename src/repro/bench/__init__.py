"""Benchmark harnesses regenerating the paper's evaluation (Chapter 5).

* :mod:`repro.bench.workloads` — the measurement workloads: streaming
  PUT/GET/EXCHANGE with MAXREQUESTS outstanding, blocking SIGNALs,
  queued-accept (port-style) servers;
* :mod:`repro.bench.perf_tables` — the "SODA Performance" table (T1-T3);
* :mod:`repro.bench.breakdown` — the "Breakdown of Communications
  Overhead" table (T4);
* :mod:`repro.bench.comparison` — the §5.5 \\*MOD comparison (C1-C2);
* :mod:`repro.bench.deltat_figure` — the "Typical Delta-t Situations"
  figure (F1);
* :mod:`repro.bench.tables` — plain-text table rendering.
"""

from repro.bench.breakdown import (
    BREAKDOWN_PAPER_MS,
    BreakdownResult,
    measure_signal_breakdown,
)
from repro.bench.comparison import ComparisonRow, measure_comparison
from repro.bench.deltat_figure import ScenarioResult, deltat_scenarios
from repro.bench.perf_tables import (
    PAPER_PERFORMANCE_MS,
    WORD_SIZES,
    PerfRow,
    generate_performance_table,
)
from repro.bench.tables import format_table
from repro.bench.workloads import StreamResult, run_blocking_signals, run_stream

__all__ = [
    "BREAKDOWN_PAPER_MS",
    "BreakdownResult",
    "ComparisonRow",
    "PAPER_PERFORMANCE_MS",
    "PerfRow",
    "ScenarioResult",
    "StreamResult",
    "WORD_SIZES",
    "deltat_scenarios",
    "format_table",
    "generate_performance_table",
    "measure_comparison",
    "measure_signal_breakdown",
    "run_blocking_signals",
    "run_stream",
]
