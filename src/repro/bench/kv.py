"""The replicated-KV benchmark: availability and failover time.

Runs the ``kvstore_supervised`` workload under a few chaos schedules —
the fault-free control, the headline ``primary_crash_load`` (power-fail
the primary under client load, no scripted reboot: the supervisor must
fail over), and ``partition_heal`` (promote *during* a partition, fence
the stale primary at heal), plus ``cluster_restart`` (every replica
loses power at once and must recover its log from disk) — and reports,
per schedule:

* **availability** — definitively-answered ops / invoked ops;
* **failover time** — primary crash (or isolation) to the next
  definitive client outcome, and to the replacement's ``kv.promote``;
* **acknowledged_write_loss** — the count of "lost acknowledged write"
  verdicts from :func:`repro.replication.consistency.check_kv_consistency`
  (the CI drift check pins this to zero: losing an acked write is never
  a tuning regression, it is a correctness bug);
* the full consistency-problem list (must be empty).

Deterministic: same seed ⇒ the same virtual-time runs ⇒ an identical
``BENCH_kv.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.workloads import build_workload
from repro.chaos.runner import chaos_config, make_schedule
from repro.chaos.scenario import GRACE_US
from repro.replication.consistency import check_kv_consistency, kv_summary

__all__ = ["run_kv_bench", "KV_BENCH_SCHEDULES"]

#: The schedules the bench sweeps, in report order.
KV_BENCH_SCHEDULES = (
    "calm",
    "primary_crash_load",
    "partition_heal",
    "cluster_restart",
)

WORKLOAD = "kvstore_supervised"


def _failover_metrics(records) -> Dict[str, Optional[float]]:
    """Crash-to-recovery intervals out of one run's trace.

    ``detect_us`` is the first primary loss (node crash, or isolation
    implied by a later promotion) to the replacement's ``kv.promote``;
    ``client_us`` extends to the next definitive client outcome after
    the loss.  ``None`` when the schedule never unseated a primary.
    """
    crash_at: Optional[float] = None
    promote_at: Optional[float] = None
    recovered_at: Optional[float] = None
    primaries: List[int] = []
    for rec in records:
        if rec.category == "kv.promote":
            primaries.append(rec["mid"])
            # The *first* promotion is cluster cold-boot, not failover.
            if crash_at is not None and promote_at is None:
                promote_at = rec.time
        elif rec.category == "kernel.crash":
            if crash_at is None and rec["mid"] in primaries:
                crash_at = rec.time
        elif rec.category == "kv.result":
            if (
                crash_at is not None
                and recovered_at is None
                and rec.time > crash_at
                and rec["status"] in ("ok", "cas_fail")
            ):
                recovered_at = rec.time
    return {
        "crash_at_us": crash_at,
        "promote_us": (
            None if crash_at is None or promote_at is None
            else promote_at - crash_at
        ),
        "client_us": (
            None if crash_at is None or recovered_at is None
            else recovered_at - crash_at
        ),
    }


def run_kv_bench(seed: int = 1) -> Dict[str, object]:
    """The ``BENCH_kv.json`` body (wrap via ``snapshot_payload``)."""
    schedules: Dict[str, Dict[str, object]] = {}
    for name in KV_BENCH_SCHEDULES:
        built = build_workload(WORKLOAD, seed=seed, config=chaos_config())
        scenario = make_schedule(name, built.spec)
        scenario.apply(built)
        horizon = max(
            built.spec.until_us, scenario.last_action_us + 2 * GRACE_US
        )
        built.net.run(until=horizon)
        records = built.net.sim.trace.records

        problems = check_kv_consistency(records)
        summary = kv_summary(records)
        failover = _failover_metrics(records)
        schedules[name] = {
            "ops_invoked": summary["ops_invoked"],
            "ops_definitive": summary["ops_definitive"],
            "availability": summary["availability"],
            "outcomes": summary["outcomes"],
            "entries_applied": summary["entries_applied"],
            "promotions": summary["promotions"],
            "failover": failover,
            "acknowledged_write_loss": sum(
                1 for p in problems
                if p.startswith("lost acknowledged")
                or p.startswith("acknowledged write lost")
            ),
            "consistency_problems": problems,
        }

    crash_cell = schedules["primary_crash_load"]
    comparison = {
        "all_consistent": all(
            not cell["consistency_problems"] for cell in schedules.values()
        ),
        "acknowledged_write_loss": sum(
            cell["acknowledged_write_loss"] for cell in schedules.values()
        ),
        "failover_client_us": crash_cell["failover"]["client_us"],
        "failover_bounded": (
            crash_cell["failover"]["client_us"] is not None
        ),
    }
    return {
        "workload": WORKLOAD,
        "seed": seed,
        "schedules": schedules,
        "comparison": comparison,
    }
