"""The \\*MOD comparison of §5.5: C1-C2.

Four SODA measurements against two \\*MOD measurements, all on the same
simulated PDP-11/Megalink hardware:

==============================  =========  =================
scenario                        paper ms   semantically like
==============================  =========  =================
B_SIGNAL, accept in handler        8.5
B_SIGNAL, queued accept           10.0      \\*MOD sync port call (20.7)
SIGNAL stream, accept in handler   4.9
SIGNAL stream, queued accept       5.8      \\*MOD async port call (11.1)
==============================  =========  =================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.starmod import StarModNetwork
from repro.bench.workloads import run_blocking_signals, run_stream


@dataclass
class ComparisonRow:
    scenario: str
    measured_ms: float
    paper_ms: float

    def to_dict(self) -> dict:
        """Machine-readable form for ``BENCH_*.json`` snapshots."""
        return {
            "scenario": self.scenario,
            "measured_ms": self.measured_ms,
            "paper_ms": self.paper_ms,
        }


PAPER_COMPARISON_MS = {
    "soda_b_signal": 8.5,
    "soda_b_signal_queued": 10.0,
    "soda_signal_stream": 4.9,
    "soda_signal_stream_queued": 5.8,
    "starmod_sync_call": 20.7,
    "starmod_async_send": 11.1,
}


def _starmod_sync(seed: int) -> float:
    net = StarModNetwork(2, seed=seed)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"ok")
    times: List[float] = []

    def body():
        for _ in range(6):
            t0 = net.sim.now
            yield from client.sync_call(0, "p", b"\x01\x02")
            times.append(net.sim.now - t0)

    net.sim.spawn(body())
    net.run(until=60_000_000.0)
    steady = times[1:]
    return sum(steady) / len(steady) / 1000.0


def _starmod_async(seed: int) -> float:
    net = StarModNetwork(2, seed=seed)
    server, client = net.nodes
    server.serve_port("p", lambda data: b"")
    marks: List[float] = []

    def body():
        for _ in range(8):
            yield from client.async_send(0, "p", b"\x01\x02")
            marks.append(net.sim.now)

    net.sim.spawn(body())
    net.run(until=60_000_000.0)
    deltas = [b - a for a, b in zip(marks, marks[1:])]
    return sum(deltas) / len(deltas) / 1000.0


def measure_comparison(seed: int = 5) -> List[ComparisonRow]:
    """All six rows of the §5.5 comparison."""
    rows = [
        ComparisonRow(
            "soda_b_signal",
            run_blocking_signals(seed=seed).per_txn_ms,
            PAPER_COMPARISON_MS["soda_b_signal"],
        ),
        ComparisonRow(
            "soda_b_signal_queued",
            run_blocking_signals(queued_accept=True, seed=seed).per_txn_ms,
            PAPER_COMPARISON_MS["soda_b_signal_queued"],
        ),
        ComparisonRow(
            "soda_signal_stream",
            run_stream(0, 0, seed=seed).per_txn_ms,
            PAPER_COMPARISON_MS["soda_signal_stream"],
        ),
        ComparisonRow(
            "soda_signal_stream_queued",
            run_stream(0, 0, queued_accept=True, seed=seed).per_txn_ms,
            PAPER_COMPARISON_MS["soda_signal_stream_queued"],
        ),
        ComparisonRow(
            "starmod_sync_call",
            _starmod_sync(seed),
            PAPER_COMPARISON_MS["starmod_sync_call"],
        ),
        ComparisonRow(
            "starmod_async_send",
            _starmod_async(seed),
            PAPER_COMPARISON_MS["starmod_async_send"],
        ),
    ]
    return rows
