"""The "SODA Performance" table (p. 115): T1-T3.

Milliseconds per PUT / GET / EXCHANGE at payload sizes from 0 to 1000
words, for the non-pipelined and pipelined kernels, measured on the
streaming workload of §5.5 (MAXREQUESTS=3, ACCEPT in the server
handler).  ``PAPER_PERFORMANCE_MS`` holds the published values for
side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.workloads import run_stream

#: Payload sizes, in 16-bit words, of the paper's table columns.
WORD_SIZES: List[int] = [0, 1, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]

#: Published values (milliseconds), keyed by (verb, pipelined).
PAPER_PERFORMANCE_MS: Dict[Tuple[str, bool], List[int]] = {
    ("put", False): [7, 8, 11, 16, 19, 23, 27, 31, 35, 39, 43, 47],
    ("put", True): [8, 8, 12, 15, 19, 23, 28, 31, 35, 39, 43, 46],
    ("get", False): [7, 16, 20, 23, 28, 32, 35, 39, 43, 48, 52, 55],
    ("get", True): [8, 11, 16, 19, 23, 27, 31, 34, 39, 42, 47, 50],
    ("exchange", False): [7, 22, 32, 44, 57, 65, 75, 86, 96, 107, 117, 128],
    ("exchange", True): [8, 12, 20, 27, 35, 43, 50, 58, 67, 75, 82, 90],
}

#: Packets per transaction the paper states for each variant.
PAPER_PACKETS: Dict[Tuple[str, bool], int] = {
    ("put", False): 2,
    ("put", True): 2,
    ("get", False): 4,
    ("get", True): 2,
    ("exchange", False): 6,
    ("exchange", True): 2,
}


@dataclass
class PerfRow:
    words: int
    measured_ms: float
    paper_ms: float
    packets: float

    def to_dict(self) -> Dict[str, float]:
        """Machine-readable form for ``BENCH_*.json`` snapshots."""
        return {
            "words": self.words,
            "measured_ms": self.measured_ms,
            "paper_ms": self.paper_ms,
            "packets": self.packets,
        }


def _buffer_words(verb: str, words: int) -> Tuple[int, int]:
    if verb == "put":
        return words, 0
    if verb == "get":
        return 0, words
    if verb == "exchange":
        return words, words
    raise ValueError(f"unknown verb {verb!r}")


def measure_cell(
    verb: str, words: int, pipelined: bool, seed: int = 5
) -> Tuple[float, float]:
    """One table cell: (ms per transaction, packets per transaction)."""
    put_words, get_words = _buffer_words(verb, words)
    result = run_stream(
        put_words, get_words, pipelined=pipelined, seed=seed
    )
    return result.per_txn_ms, result.packets_per_txn


def generate_performance_table(
    verb: str,
    pipelined: bool,
    sizes: List[int] = WORD_SIZES,
    seed: int = 5,
) -> List[PerfRow]:
    """Regenerate one of the six sub-tables."""
    paper = PAPER_PERFORMANCE_MS[(verb, pipelined)]
    rows = []
    for i, words in enumerate(sizes):
        ms, packets = measure_cell(verb, words, pipelined, seed=seed)
        paper_ms = paper[WORD_SIZES.index(words)] if words in WORD_SIZES else float("nan")
        rows.append(
            PerfRow(words=words, measured_ms=ms, paper_ms=paper_ms, packets=packets)
        )
    return rows
