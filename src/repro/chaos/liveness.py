"""Post-run liveness and degradation assertions for chaos cells.

The invariant checker (PR 1) proves *safety* — nothing illegal happened
in the trace.  These checks prove *liveness* at the horizon: every
REQUEST issued more than a grace period ago reached a terminal status
(complete / cancelled / crashed / unadvertised), no kernel timer or
record outlived its incarnation, and no connection is wedged with an
outstanding message and no armed timer.

The grace period exists because a fault landing near the horizon is
still legitimately in flight: retransmission exhaustion, probe death,
and DISCOVER windows all resolve within :data:`~repro.chaos.scenario.GRACE_US`.

:func:`check_degradation` raises the bar from "eventually terminal" to
"kept serving while faulted": the completed fraction of judged spans
(goodput) must stay above a per-schedule floor, and the p99 end-to-end
latency of what did complete must stay bounded.  A violated bound fails
the cell exactly like a safety violation (ISSUE 5's verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence

from repro.chaos.scenario import GRACE_US
from repro.core.node import Network
from repro.obs.spans import TransactionSpan, build_spans


def _timer_live(timer) -> bool:
    return timer is not None and not timer.cancelled


def check_liveness(
    net: Network,
    spans: Optional[List[TransactionSpan]] = None,
    grace_us: float = GRACE_US,
) -> List[str]:
    """Return human-readable liveness problems (empty = healthy)."""
    problems: List[str] = []
    horizon = net.sim.now
    if spans is None:
        spans = build_spans(net.sim.trace.records)

    for span in spans:
        if span.status == "pending" and span.request_us < horizon - grace_us:
            problems.append(
                f"span <{span.requester_mid},{span.tid}> ({span.verb}) "
                f"issued at t={span.request_us / 1000.0:.1f}ms never "
                f"reached a terminal status"
            )

    for mid in sorted(net.nodes):
        kernel = net.nodes[mid].kernel
        for tid in sorted(kernel.requests):
            record = kernel.requests[tid]
            if record.open:
                continue  # still-open requests are judged via their span
            for attr in ("probe_timer", "probe_deadline"):
                if _timer_live(getattr(record, attr)):
                    problems.append(
                        f"node {mid}: closed request #{tid} leaked a "
                        f"live {attr}"
                    )

        client = kernel.client
        client_dead = client is None or client.dead
        if client_dead and kernel.offline_until is None:
            if kernel._discovers:
                problems.append(
                    f"node {mid}: dead client left "
                    f"{len(kernel._discovers)} open DISCOVER window(s)"
                )
            if kernel.pending_accepts:
                problems.append(
                    f"node {mid}: dead client left "
                    f"{len(kernel.pending_accepts)} pending ACCEPT(s)"
                )
            if kernel.held is not None:
                problems.append(
                    f"node {mid}: dead client still holds a parked "
                    f"REQUEST"
                )
            stuck = [
                tid
                for tid in sorted(kernel.requests)
                if kernel.requests[tid].open
            ]
            if stuck:
                problems.append(
                    f"node {mid}: dead client left open request(s) "
                    f"{stuck}"
                )

        for peer in sorted(kernel.connections):
            conn = kernel.connections[peer]
            if conn.outstanding is None:
                continue
            if not (
                _timer_live(conn._retransmit_timer)
                or _timer_live(conn._busy_timer)
            ):
                problems.append(
                    f"node {mid}: connection to {peer} wedged — "
                    f"outstanding {conn.outstanding.kind!r} with no "
                    f"armed timer"
                )
    return problems


# ----------------------------------------------------------------------
# degradation verdict (goodput floor + latency bound)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DegradationBounds:
    """Per-schedule service-level bounds for one chaos cell.

    ``goodput_floor`` is the minimum completed fraction of judged spans
    (issued outside the trailing grace window; CANCELs and DISCOVERs are
    excluded — a successful withdrawal is not lost goodput).
    ``p99_latency_us`` bounds the 99th-percentile end-to-end latency of
    completed spans; ``None`` disables that bound (crash schedules,
    where the interesting latencies are the *failures*).
    """

    goodput_floor: float = 0.5
    p99_latency_us: Optional[float] = None
    #: Below this many judged spans the cell is too small to judge
    #: statistically; only the (trivially checkable) floor applies.
    min_spans: int = 1


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in 0..1) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = ceil(q * len(ordered))
    return ordered[max(rank, 1) - 1]


def check_degradation(
    spans: List[TransactionSpan],
    horizon_us: float,
    bounds: DegradationBounds,
    grace_us: float = GRACE_US,
) -> List[str]:
    """Judge a cell's service level; returns problems (empty = healthy)."""
    judged = [
        s
        for s in spans
        if not s.is_discover
        and s.status != "cancelled"
        and s.request_us < horizon_us - grace_us
    ]
    problems: List[str] = []
    if len(judged) < bounds.min_spans:
        return problems
    completed = [s for s in judged if s.completed]
    goodput = len(completed) / len(judged)
    if goodput < bounds.goodput_floor:
        problems.append(
            f"goodput {goodput:.2f} ({len(completed)}/{len(judged)} "
            f"spans completed) below floor {bounds.goodput_floor:.2f}"
        )
    if bounds.p99_latency_us is not None and completed:
        latencies = [
            s.latency_us for s in completed if s.latency_us is not None
        ]
        if latencies:
            p99 = percentile(latencies, 0.99)
            if p99 > bounds.p99_latency_us:
                problems.append(
                    f"p99 latency {p99 / 1000.0:.1f}ms exceeds bound "
                    f"{bounds.p99_latency_us / 1000.0:.1f}ms"
                )
    return problems
