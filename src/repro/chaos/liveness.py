"""Post-run liveness assertions for chaos cells.

The invariant checker (PR 1) proves *safety* — nothing illegal happened
in the trace.  These checks prove *liveness* at the horizon: every
REQUEST issued more than a grace period ago reached a terminal status
(complete / cancelled / crashed / unadvertised), no kernel timer or
record outlived its incarnation, and no connection is wedged with an
outstanding message and no armed timer.

The grace period exists because a fault landing near the horizon is
still legitimately in flight: retransmission exhaustion, probe death,
and DISCOVER windows all resolve within :data:`~repro.chaos.scenario.GRACE_US`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chaos.scenario import GRACE_US
from repro.core.node import Network
from repro.obs.spans import TransactionSpan, build_spans


def _timer_live(timer) -> bool:
    return timer is not None and not timer.cancelled


def check_liveness(
    net: Network,
    spans: Optional[List[TransactionSpan]] = None,
    grace_us: float = GRACE_US,
) -> List[str]:
    """Return human-readable liveness problems (empty = healthy)."""
    problems: List[str] = []
    horizon = net.sim.now
    if spans is None:
        spans = build_spans(net.sim.trace.records)

    for span in spans:
        if span.status == "pending" and span.request_us < horizon - grace_us:
            problems.append(
                f"span <{span.requester_mid},{span.tid}> ({span.verb}) "
                f"issued at t={span.request_us / 1000.0:.1f}ms never "
                f"reached a terminal status"
            )

    for mid in sorted(net.nodes):
        kernel = net.nodes[mid].kernel
        for tid in sorted(kernel.requests):
            record = kernel.requests[tid]
            if record.open:
                continue  # still-open requests are judged via their span
            for attr in ("probe_timer", "probe_deadline"):
                if _timer_live(getattr(record, attr)):
                    problems.append(
                        f"node {mid}: closed request #{tid} leaked a "
                        f"live {attr}"
                    )

        client = kernel.client
        client_dead = client is None or client.dead
        if client_dead and kernel.offline_until is None:
            if kernel._discovers:
                problems.append(
                    f"node {mid}: dead client left "
                    f"{len(kernel._discovers)} open DISCOVER window(s)"
                )
            if kernel.pending_accepts:
                problems.append(
                    f"node {mid}: dead client left "
                    f"{len(kernel.pending_accepts)} pending ACCEPT(s)"
                )
            if kernel.held is not None:
                problems.append(
                    f"node {mid}: dead client still holds a parked "
                    f"REQUEST"
                )
            stuck = [
                tid
                for tid in sorted(kernel.requests)
                if kernel.requests[tid].open
            ]
            if stuck:
                problems.append(
                    f"node {mid}: dead client left open request(s) "
                    f"{stuck}"
                )

        for peer in sorted(kernel.connections):
            conn = kernel.connections[peer]
            if conn.outstanding is None:
                continue
            if not (
                _timer_live(conn._retransmit_timer)
                or _timer_live(conn._busy_timer)
            ):
                problems.append(
                    f"node {mid}: connection to {peer} wedged — "
                    f"outstanding {conn.outstanding.kind!r} with no "
                    f"armed timer"
                )
    return problems
