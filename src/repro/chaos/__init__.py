"""Deterministic chaos testing for the SODA protocol stack.

Composes timed fault schedules (:mod:`repro.chaos.scenario`) over the
named workloads, sweeps (workload × schedule × seed) cells
(:mod:`repro.chaos.runner`), judges every run with the invariant
checker plus liveness assertions (:mod:`repro.chaos.liveness`), and
shrinks failures to minimal ready-to-paste reproducers
(:mod:`repro.chaos.shrink`).

CLI: ``python -m repro chaos [--matrix] [--seed N] [--json PATH]``.
See ``docs/CHAOS.md``.
"""

from repro.chaos.liveness import check_liveness
from repro.chaos.runner import (
    RECOVERY_SCHEDULES,
    SCHEDULES,
    CellResult,
    make_schedule,
    matrix_cells,
    matrix_payload,
    run_cell,
    run_matrix,
)
from repro.chaos.scenario import (
    GRACE_US,
    ClientDie,
    LossWindow,
    NodeCrash,
    Partition,
    Reboot,
    Scenario,
    TargetedDrop,
)
from repro.chaos.shrink import format_repro, shrink_scenario

__all__ = [
    "GRACE_US",
    "RECOVERY_SCHEDULES",
    "SCHEDULES",
    "CellResult",
    "ClientDie",
    "LossWindow",
    "NodeCrash",
    "Partition",
    "Reboot",
    "Scenario",
    "TargetedDrop",
    "check_liveness",
    "format_repro",
    "make_schedule",
    "matrix_cells",
    "matrix_payload",
    "run_cell",
    "run_matrix",
    "shrink_scenario",
]
