"""Greedy schedule shrinking and reproducer formatting.

When a cell fails, the sweep does not just report it — it removes
schedule actions one at a time (re-running the cell each time) until no
single removal preserves the failure, then prints the minimal schedule
as a ready-to-paste regression test.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.chaos.scenario import Scenario


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_runs: int = 64,
) -> Scenario:
    """Greedily remove actions while ``still_fails`` holds.

    Runs to a fixpoint: the result is 1-minimal (removing any single
    remaining action makes the failure disappear).  ``max_runs`` bounds
    the re-executions for pathological schedules.
    """
    current = scenario
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for index in range(len(current.actions)):
            trial = current.without(index)
            runs += 1
            if still_fails(trial):
                current = trial
                progress = True
                break
            if runs >= max_runs:
                break
    return current


def _format_actions(scenario: Scenario, indent: str = " " * 12) -> str:
    if not scenario.actions:
        return indent + "# (empty — the workload fails with no faults)"
    return "\n".join(f"{indent}{action!r}," for action in scenario.actions)


def format_repro(
    workload: str,
    seed: int,
    scenario: Scenario,
    problems: Sequence[str],
) -> str:
    """A ready-to-paste pytest regression test for a shrunk failure."""
    problem_lines = "\n".join(f"    #   {p}" for p in problems) or (
        "    #   (no recorded problems)"
    )
    return f'''\
def test_chaos_regression_{workload}_{scenario.name}_seed{seed}():
    """Shrunk reproducer from `python -m repro chaos`.

    Observed failure:
{problem_lines}
    """
    from repro.chaos import Scenario, run_cell
    from repro.chaos.scenario import (
        ClientDie, LossWindow, NodeCrash, Partition, Reboot, TargetedDrop,
    )

    scenario = Scenario(
        name={scenario.name!r},
        actions=(
{_format_actions(scenario)}
        ),
    )
    result = run_cell({workload!r}, scenario.name, seed={seed}, scenario=scenario)
    failures = result.invariant_violations + result.liveness_problems
    assert result.ok, "\\n".join(failures)
'''
