"""The chaos matrix runner: (workload × schedule × seed) sweep.

Each *cell* builds a workload (:func:`repro.analysis.workloads.build_workload`),
applies a fault :class:`~repro.chaos.scenario.Scenario`, runs to a
horizon past the last fault plus grace, then judges the run three ways:

* the PR-1 invariant checker (safety; non-strict completion, because a
  requester that died mid-transaction legitimately leaves the server
  holding an un-ACCEPTed DELIVERED record forever);
* the PR-2 span builder + :mod:`repro.chaos.liveness` (every REQUEST
  outside the grace window reached a terminal status, no leaked
  timers/windows, no wedged connections);
* fault-plan accounting (what the schedule actually injected), folded
  into the report so a cell that injected nothing is visible.

Everything is deterministic: same (workload, schedule, seed) ⇒ the same
virtual-time run ⇒ an identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.invariants import check_network
from repro.analysis.workloads import WORKLOADS, WorkloadSpec, build_workload
from repro.chaos.scenario import (
    GRACE_US,
    ClientDie,
    DiskFault,
    DuplicateWindow,
    LossWindow,
    NodeCrash,
    Partition,
    PowerLoss,
    Reboot,
    ReorderWindow,
    Scenario,
    TargetedDrop,
    ThunderingHerd,
)
from repro.chaos.liveness import (
    DegradationBounds,
    check_degradation,
    check_liveness,
)
from repro.core.config import KernelConfig
from repro.obs.export import snapshot_payload
from repro.obs.spans import build_spans
from repro.recovery.convergence import check_self_heal, recovery_summary
from repro.replication.consistency import check_kv_consistency, kv_summary
from repro.transport.adaptive import AdaptivePolicy, deltat_for_policy
from repro.transport.retransmit import RetransmitPolicy


def _server_role(spec: WorkloadSpec) -> str:
    return spec.roles[0].name


def _client_role(spec: WorkloadSpec) -> str:
    return spec.roles[-1].name


def _disk_roles(spec: WorkloadSpec) -> Tuple[str, ...]:
    """The roles the durability schedules target: every disk-bearing
    role (the KV replicas), or the server role on diskless workloads —
    where a power loss degenerates to crash + reboot."""
    roles = tuple(
        role.name for role in spec.roles if role.disk_factory is not None
    )
    return roles or (_server_role(spec),)


def _lossy(spec: WorkloadSpec) -> Scenario:
    # Opens at t=0 so even short workloads (echo finishes in ~100ms)
    # run their whole transaction stream through the noise.
    return Scenario(
        "lossy",
        (LossWindow(0.0, 2_000_000.0, loss=0.15, corruption=0.05),),
    )


def _partition(spec: WorkloadSpec) -> Scenario:
    # Starts at 20ms — inside every workload's request stream — and
    # lasts past retransmission exhaustion, so requesters both declare
    # the server dead AND see it heal.
    return Scenario(
        "partition",
        (
            Partition(
                20_000.0, 860_000.0, isolate=(_server_role(spec),)
            ),
        ),
    )


def _strike(spec: WorkloadSpec) -> Scenario:
    # Surgical frame kills: the very first REQUEST (hits every
    # workload), the 3rd ACCEPT reply, and the 2nd pure ACK — each
    # forces a distinct retransmission path.
    return Scenario(
        "strike",
        (
            TargetedDrop(0.0, ptype="request", skip=0),
            TargetedDrop(0.0, ptype="accept", skip=2),
            TargetedDrop(0.0, ptype="ack", skip=1),
        ),
    )


def _client_flap(spec: WorkloadSpec) -> Scenario:
    # DIE lands mid-transaction for every workload (even echo, whose
    # whole stream runs ~0.1-60ms); the reboot restarts the role.
    role = _client_role(spec)
    return Scenario(
        "client_flap",
        (
            ClientDie(25_000.0, role=role),
            Reboot(600_000.0, role=role),
        ),
    )


def _server_flap(spec: WorkloadSpec) -> Scenario:
    role = _server_role(spec)
    return Scenario(
        "server_flap",
        (
            ClientDie(22_000.0, role=role),
            Reboot(500_000.0, role=role),
        ),
    )


def _server_crash(spec: WorkloadSpec) -> Scenario:
    role = _server_role(spec)
    return Scenario(
        "server_crash",
        (
            NodeCrash(30_000.0, role=role),
            Reboot(1_200_000.0, role=role),
        ),
    )


def _calm(spec: WorkloadSpec) -> Scenario:
    # The fault-free control row: a healthy run must produce zero crash
    # reports and zero false suspicions (docs/RECOVERY.md).
    return Scenario("calm", ())


def _crash_idle(spec: WorkloadSpec) -> Scenario:
    # Crash-then-idle: the server dies and *nothing in the schedule*
    # brings it back.  Supervised workloads must self-heal through the
    # supervisor's BOOT/LOAD path; unsupervised ones must terminate
    # every pending span against the permanently-dead server.
    # t=15ms lands inside the supervised client's first exchange, so the
    # DIE leaves a DELIVERED-but-unACCEPTed record behind and the retry
    # shim's probe-proof path (arg=2) gets exercised, not just healing.
    return Scenario(
        "crash_idle", (ClientDie(15_000.0, role=_server_role(spec)),)
    )


def _crash_load(spec: WorkloadSpec) -> Scenario:
    # Power-fail the server node under request load; no scripted reboot
    # — recovery, if promised, is the supervisor's job.
    # t=334ms is inside a later exchange of the supervised client: a
    # power failure wipes the crashed-unaccepted memory with the rest of
    # the kernel, so the in-flight op must resolve as MAYBE (ambiguous),
    # never as a blind retry.
    return Scenario(
        "crash_load", (NodeCrash(334_000.0, role=_server_role(spec)),)
    )


def _sustained_loss(spec: WorkloadSpec) -> Scenario:
    # The degradation tentpole: a 30% loss *plateau* held for three
    # seconds.  Not a burst to survive but a steady state to serve
    # through — the schedule the adaptive-vs-static transport benchmark
    # (repro.bench.transport) runs under.
    return Scenario(
        "sustained_loss",
        (LossWindow(0.0, 3_000_000.0, loss=0.30),),
    )


def _thundering_herd(spec: WorkloadSpec) -> Scenario:
    # N clones of the client role hammer the one server from t=10ms;
    # exercises BUSY parking, the widened retry hints, and the kernel
    # overload controller's OVERLOAD shed path.
    return Scenario(
        "thundering_herd",
        (ThunderingHerd(10_000.0, role=_client_role(spec), clones=6),),
    )


def _duplicate(spec: WorkloadSpec) -> Scenario:
    # Frame replay: 15% of surviving deliveries arrive twice, the echo
    # 150µs behind the original — stale REQUESTs, ACCEPT replies, and
    # replication APPENDs all replayed after they were acted on.
    return Scenario(
        "duplicate",
        (DuplicateWindow(0.0, 2_500_000.0, probability=0.15),),
    )


def _reorder(spec: WorkloadSpec) -> Scenario:
    # Overtaking: 15% of deliveries held back 600µs so younger frames
    # pass them — out-of-order arrival with nothing actually lost.
    return Scenario(
        "reorder",
        (ReorderWindow(0.0, 2_500_000.0, probability=0.15, extra_us=600.0),),
    )


def _primary_crash_load(spec: WorkloadSpec) -> Scenario:
    # The KV failover headline: power-fail the first role (the initial
    # KV primary) under client load with *no scripted reboot* — a
    # supervised cluster must fail over, an unsupervised one must fail
    # every subsequent op definitively rather than lie.
    return Scenario(
        "primary_crash_load",
        (NodeCrash(200_000.0, role=_server_role(spec)),),
    )


def _backup_flap(spec: WorkloadSpec) -> Scenario:
    # Kill and reboot a *backup* (the second replica role when there is
    # one).  The primary keeps serving through the flap at quorum; the
    # rebooted backup comes back amnesiac and must anti-entropy catch up
    # before its CONFIRMs count again.
    roles = [role.name for role in spec.roles]
    role = roles[1] if len(roles) >= 3 else roles[-1]
    return Scenario(
        "backup_flap",
        (
            ClientDie(180_000.0, role=role),
            Reboot(900_000.0, role=role),
        ),
    )


def _partition_heal(spec: WorkloadSpec) -> Scenario:
    # Isolate the first role (the KV primary) long enough for the
    # supervisor to promote a replacement *during* the partition, then
    # heal: the stale primary resurfaces mid-epoch and must be fenced by
    # the first APPEND/CONFIRM it exchanges, not allowed to ack writes.
    return Scenario(
        "partition_heal",
        (
            Partition(
                120_000.0, 2_600_000.0, isolate=(_server_role(spec),)
            ),
        ),
    )


def _flap(spec: WorkloadSpec) -> Scenario:
    # Flapping node: die, get healed (supervisor), die again — forcing
    # two full supervision cycles.  For unsupervised workloads the
    # second DIE is a forgiving no-op on an already-dead client.
    role = _server_role(spec)
    return Scenario(
        "flap",
        (
            ClientDie(25_000.0, role=role),
            ClientDie(1_292_000.0, role=role),
        ),
    )


def _cluster_restart(spec: WorkloadSpec) -> Scenario:
    # The durability headline: power-fail EVERY disk-bearing role at
    # the same instant under load, then reboot them all.  No surviving
    # peer holds the state, so anti-entropy cannot repair anyone —
    # acknowledged writes come back only from local WAL + snapshots.
    return Scenario(
        "cluster_restart",
        (
            PowerLoss(
                900_000.0, roles=_disk_roles(spec),
                reboot_delay_us=500_000.0,
            ),
        ),
    )


def _cluster_power_loss(spec: WorkloadSpec) -> Scenario:
    # cluster_restart with the disks set to tear: each node's in-flight
    # unsynced write survives only as a prefix (ALICE-style torn
    # write), so every recovery must walk a damaged WAL tail.
    roles = _disk_roles(spec)
    torn = tuple(
        DiskFault(0.0, role=role, kind="torn_write") for role in roles
    )
    return Scenario(
        "cluster_power_loss",
        torn
        + (PowerLoss(900_000.0, roles=roles, reboot_delay_us=500_000.0),),
    )


def _torn_write_primary(spec: WorkloadSpec) -> Scenario:
    # Tear only the initial primary's disk, then power-fail it alone
    # mid-load: the cluster fails over while the old primary recovers
    # from a torn WAL and rejoins as a fenced backup.
    role = _disk_roles(spec)[0]
    return Scenario(
        "torn_write_primary",
        (
            DiskFault(0.0, role=role, kind="torn_write"),
            PowerLoss(700_000.0, roles=(role,), reboot_delay_us=500_000.0),
        ),
    )


def _bitrot_backup(spec: WorkloadSpec) -> Scenario:
    # Flip bits in a backup's *durable* WAL, then power-cycle it: the
    # CRC framing must detect the rot (truncating replay at the damage,
    # never deserializing garbage) and anti-entropy must repair the
    # re-joined replica from its peers.
    roles = _disk_roles(spec)
    role = roles[1] if len(roles) >= 2 else roles[0]
    return Scenario(
        "bitrot_backup",
        (
            DiskFault(1_000_000.0, role=role, kind="bitrot", count=4),
            PowerLoss(
                1_050_000.0, roles=(role,), reboot_delay_us=400_000.0
            ),
        ),
    )


#: Named schedule factories; each adapts to the workload's role names.
SCHEDULES: Dict[str, Callable[[WorkloadSpec], Scenario]] = {
    "lossy": _lossy,
    "partition": _partition,
    "strike": _strike,
    "client_flap": _client_flap,
    "server_flap": _server_flap,
    "server_crash": _server_crash,
    "calm": _calm,
    "crash_idle": _crash_idle,
    "crash_load": _crash_load,
    "flap": _flap,
    "sustained_loss": _sustained_loss,
    "thundering_herd": _thundering_herd,
    "duplicate": _duplicate,
    "reorder": _reorder,
    "primary_crash_load": _primary_crash_load,
    "backup_flap": _backup_flap,
    "partition_heal": _partition_heal,
    "cluster_restart": _cluster_restart,
    "cluster_power_loss": _cluster_power_loss,
    "torn_write_primary": _torn_write_primary,
    "bitrot_backup": _bitrot_backup,
}

#: The recovery schedules judged by the self-heal check (plus every
#: other schedule: the check runs on all cells of supervised workloads).
RECOVERY_SCHEDULES = ("crash_idle", "crash_load", "flap")

#: Per-schedule service-level bounds for the degradation verdict
#: (repro.chaos.liveness.check_degradation).  Degradation schedules get
#: real floors — "keep serving while faulted" — while crash/partition
#: schedules, whose *point* is failed transactions, keep only a token
#: floor (their correctness is judged by safety + liveness + self-heal).
DEGRADATION_BOUNDS: Dict[str, DegradationBounds] = {
    "calm": DegradationBounds(goodput_floor=0.95, p99_latency_us=2_000_000.0),
    "strike": DegradationBounds(goodput_floor=0.85, p99_latency_us=2_500_000.0),
    "lossy": DegradationBounds(goodput_floor=0.5, p99_latency_us=3_000_000.0),
    "sustained_loss": DegradationBounds(
        goodput_floor=0.4, p99_latency_us=3_000_000.0
    ),
    "thundering_herd": DegradationBounds(
        goodput_floor=0.5, p99_latency_us=3_000_000.0
    ),
    "partition": DegradationBounds(goodput_floor=0.0),
    "client_flap": DegradationBounds(goodput_floor=0.0),
    "server_flap": DegradationBounds(goodput_floor=0.0),
    "server_crash": DegradationBounds(goodput_floor=0.0),
    "crash_idle": DegradationBounds(goodput_floor=0.0),
    "crash_load": DegradationBounds(goodput_floor=0.0),
    "flap": DegradationBounds(goodput_floor=0.0),
    # Nothing is lost under duplication/reordering, so transactions all
    # complete — just a little late where a held-back frame forced a
    # retransmission round.
    "duplicate": DegradationBounds(
        goodput_floor=0.8, p99_latency_us=3_000_000.0
    ),
    "reorder": DegradationBounds(
        goodput_floor=0.7, p99_latency_us=3_000_000.0
    ),
    "primary_crash_load": DegradationBounds(goodput_floor=0.0),
    "backup_flap": DegradationBounds(goodput_floor=0.0),
    "partition_heal": DegradationBounds(goodput_floor=0.0),
    "cluster_restart": DegradationBounds(goodput_floor=0.0),
    "cluster_power_loss": DegradationBounds(goodput_floor=0.0),
    "torn_write_primary": DegradationBounds(goodput_floor=0.0),
    "bitrot_backup": DegradationBounds(goodput_floor=0.0),
}

#: Bounds applied to ad-hoc scenarios (shrinker reproducers).
DEFAULT_DEGRADATION_BOUNDS = DegradationBounds(goodput_floor=0.0)


def chaos_config(
    policy: Optional[RetransmitPolicy] = None,
) -> KernelConfig:
    """The kernel configuration chaos cells run under.

    The adaptive policy is the chaos/soak default (ISSUE 5); the static
    paper-faithful policy stays the default everywhere else.  Delta-t's
    ``R`` is harmonized with the policy's true retry window either way
    (the §5.2.2 consistency condition).
    """
    policy = policy if policy is not None else AdaptivePolicy()
    return KernelConfig(
        retransmit=policy, deltat=deltat_for_policy(policy)
    )


@dataclass
class CellResult:
    """One (workload, schedule, seed) cell's verdict."""

    workload: str
    schedule: str
    seed: int
    horizon_us: float
    invariant_violations: List[str] = field(default_factory=list)
    liveness_problems: List[str] = field(default_factory=list)
    selfheal_problems: List[str] = field(default_factory=list)
    degradation_problems: List[str] = field(default_factory=list)
    #: Causal verdicts (``run_cell(..., causal=True)``): SODA010-013
    #: diagnostics plus any streaming/batch checker disagreement.
    causal_problems: List[str] = field(default_factory=list)
    #: KV linearizability verdicts (lost acked writes, stale reads,
    #: double-applied CAS...); empty for workloads without ``kv.*``
    #: records.
    consistency_problems: List[str] = field(default_factory=list)
    spans_by_status: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, object] = field(default_factory=dict)
    kv: Dict[str, object] = field(default_factory=dict)
    frames_sent: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.invariant_violations
            and not self.liveness_problems
            and not self.selfheal_problems
            and not self.degradation_problems
            and not self.causal_problems
            and not self.consistency_problems
        )

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.workload, self.schedule, self.seed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "schedule": self.schedule,
            "seed": self.seed,
            "ok": self.ok,
            "horizon_us": self.horizon_us,
            "invariant_violations": list(self.invariant_violations),
            "liveness_problems": list(self.liveness_problems),
            "selfheal_problems": list(self.selfheal_problems),
            "degradation_problems": list(self.degradation_problems),
            "causal_problems": list(self.causal_problems),
            "consistency_problems": list(self.consistency_problems),
            "spans_by_status": dict(sorted(self.spans_by_status.items())),
            "faults": dict(sorted(self.faults.items())),
            "recovery": self.recovery,
            "kv": self.kv,
            "frames_sent": self.frames_sent,
        }


def make_schedule(name: str, spec: WorkloadSpec) -> Scenario:
    try:
        factory = SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r}; choose from "
            f"{', '.join(sorted(SCHEDULES))}"
        ) from None
    return factory(spec)


def run_cell(
    workload: str,
    schedule: str,
    seed: int,
    scenario: Optional[Scenario] = None,
    policy: Optional[RetransmitPolicy] = None,
    causal: bool = False,
) -> CellResult:
    """Run one chaos cell; ``scenario`` overrides the named schedule
    (used by the shrinker and by checked-in reproducers), ``policy``
    overrides the adaptive default (used by the transport benchmark).
    ``causal`` additionally runs the causal analysis engine over the
    cell's trace: SODA010-013 race/deadlock rules, plus an assertion
    that the streaming invariant checker reproduces the batch verdicts."""
    built = build_workload(workload, seed=seed, config=chaos_config(policy))
    spec = built.spec
    if scenario is None:
        scenario = make_schedule(schedule, spec)
    scenario.apply(built)
    horizon = max(spec.until_us, scenario.last_action_us + 2 * GRACE_US)
    built.net.run(until=horizon)
    net = built.net

    violations = check_network(net, strict_completion=False)
    causal_problems: List[str] = []
    if causal:
        causal_problems = _causal_verdicts(net, violations)
    spans = build_spans(net.sim.trace.records)
    problems = check_liveness(net, spans=spans)
    selfheal = check_self_heal(built, scenario.last_action_us)
    degradation = check_degradation(
        spans,
        horizon,
        DEGRADATION_BOUNDS.get(schedule, DEFAULT_DEGRADATION_BOUNDS),
    )

    records = net.sim.trace.records
    consistency = check_kv_consistency(records)
    summary = kv_summary(records)
    kv = summary if summary["ops_invoked"] else {}

    by_status: Dict[str, int] = {}
    for span in spans:
        by_status[span.status] = by_status.get(span.status, 0) + 1
    faults = net.faults
    disk_faults: Dict[str, int] = {}
    for node in net.nodes.values():
        plan = getattr(getattr(node, "disk", None), "plan", None)
        if plan is None:
            continue
        for key, value in plan.counter_snapshot().items():
            disk_faults[f"disk_{key}"] = (
                disk_faults.get(f"disk_{key}", 0) + value
            )
    return CellResult(
        workload=workload,
        schedule=schedule,
        seed=seed,
        horizon_us=horizon,
        invariant_violations=[v.format() for v in violations],
        liveness_problems=problems,
        selfheal_problems=selfheal,
        degradation_problems=degradation,
        causal_problems=causal_problems,
        consistency_problems=consistency,
        recovery=recovery_summary(records),
        kv=kv,
        spans_by_status=by_status,
        faults={
            "frames_lost": faults.frames_lost,
            "frames_corrupted": faults.frames_corrupted,
            "frames_scripted_drops": faults.frames_scripted_drops,
            "deliveries_predicate_dropped": (
                faults.deliveries_predicate_dropped
            ),
            "deliveries_duplicated": faults.deliveries_duplicated,
            "deliveries_reordered": faults.deliveries_reordered,
            **disk_faults,
        },
        frames_sent=net.bus.frames_sent,
    )


def _causal_verdicts(net, batch_violations) -> List[str]:
    """The causal column of one cell: SODA010-013 diagnostics plus a
    streaming-vs-batch checker agreement assertion."""
    from repro.analysis.causal import (
        build_causal_order,
        check_stream,
        detect_deadlocks,
        find_races,
    )

    problems: List[str] = []
    records = list(net.sim.trace.records)
    stream = check_stream(
        records, network=net, strict_completion=False, ledger=net.ledger
    )
    batch_fmt = [v.format() for v in batch_violations]
    stream_fmt = [v.format() for v in stream]
    if stream_fmt != batch_fmt:
        problems.append(
            f"streaming checker diverged from batch: "
            f"{len(stream_fmt)} vs {len(batch_fmt)} verdict(s)"
        )
    order = build_causal_order(records)
    for diag in find_races(records, order):
        problems.append(diag.format())
    for diag in detect_deadlocks(records):
        problems.append(diag.format())
    return problems


def matrix_cells(
    workloads: Optional[Sequence[str]] = None,
    schedules: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1,),
) -> List[Tuple[str, str, int]]:
    """The deterministic cell enumeration of a sweep."""
    workload_names = list(workloads) if workloads else sorted(WORKLOADS)
    schedule_names = list(schedules) if schedules else sorted(SCHEDULES)
    return [
        (workload, schedule, seed)
        for workload in workload_names
        for schedule in schedule_names
        for seed in seeds
    ]


def _run_cell_packed(args: Tuple[str, str, int, bool]) -> CellResult:
    """Module-level trampoline so ProcessPoolExecutor can pickle it."""
    workload, schedule, seed, causal = args
    return run_cell(workload, schedule, seed, causal=causal)


def run_matrix(
    workloads: Optional[Sequence[str]] = None,
    schedules: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1,),
    progress: Optional[Callable[[CellResult], None]] = None,
    causal: bool = False,
    parallel: Optional[int] = None,
) -> List[CellResult]:
    """Sweep the matrix; results come back in deterministic cell order.

    ``parallel=N`` farms cells out to N worker processes.  Cells are
    independent, seed-deterministic simulations, so the merged result
    list — and any JSON derived from it — is byte-identical to a serial
    sweep; only wall-clock changes.
    """
    cells = matrix_cells(workloads, schedules, seeds)
    results: List[CellResult] = []
    if parallel is not None and parallel > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(parallel, len(cells))
        packed = [(w, s, seed, causal) for w, s, seed in cells]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() yields in submission order: canonical enumeration
            # order, regardless of which worker finishes first.
            for result in pool.map(_run_cell_packed, packed):
                results.append(result)
                if progress is not None:
                    progress(result)
        return results
    for workload, schedule, seed in cells:
        result = run_cell(workload, schedule, seed, causal=causal)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def matrix_payload(
    results: Sequence[CellResult], seed: int
) -> Dict[str, object]:
    """The ``soda.bench/1`` report for a finished sweep."""
    failed = [r for r in results if not r.ok]
    body = {
        "cells": [r.to_dict() for r in results],
        "summary": {
            "total": len(results),
            "failed": len(failed),
            "failed_cells": sorted(
                f"{r.workload}/{r.schedule}/seed={r.seed}" for r in failed
            ),
        },
    }
    return snapshot_payload("chaos", body, meta={"seed": seed})
