"""Fault-schedule scenarios: timed actions over a built workload.

A :class:`Scenario` is an ordered tuple of *actions*, each a frozen
dataclass naming a virtual time and a fault to inject.  Actions refer to
nodes by their workload *role name* (``"server"``, ``"client"``, ...)
so one schedule applies to every workload in
:mod:`repro.analysis.workloads`.

Every action's ``repr`` is a valid constructor call; the shrinker
(:mod:`repro.chaos.shrink`) relies on this to print a minimal failing
schedule as a ready-to-paste regression test.

Actions are deliberately forgiving at fire time (a ``ClientDie`` for an
already-dead client is a no-op): the shrinker removes actions one at a
time, and the survivors must still apply cleanly in any combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.analysis.workloads import BuiltWorkload
from repro.core.node import SodaNode
from repro.net.frame import Frame

#: Time excused at the end of a run: a REQUEST issued inside the last
#: ``GRACE_US`` may legitimately still be pending at the horizon, and
#: every fault path (retransmission exhaustion, probe death, DISCOVER
#: windows) resolves well inside it.
GRACE_US = 3_000_000.0


@dataclass(frozen=True)
class LossWindow:
    """Raise probabilistic loss/corruption between two instants."""

    start_us: float
    end_us: float
    loss: float = 0.0
    corruption: float = 0.0

    def apply(self, built: BuiltWorkload) -> None:
        faults = built.net.faults
        saved: List[Tuple[float, float]] = []

        def begin() -> None:
            saved.append(
                (faults.loss_probability, faults.corruption_probability)
            )
            faults.loss_probability = self.loss
            faults.corruption_probability = self.corruption

        def end() -> None:
            faults.loss_probability, faults.corruption_probability = (
                saved.pop() if saved else (0.0, 0.0)
            )

        built.net.sim.at(self.start_us, begin)
        built.net.sim.at(self.end_us, end)


@dataclass(frozen=True)
class DuplicateWindow:
    """Deliver a fraction of frames twice between two instants.

    The second copy arrives ``delay_us`` later — long enough to land
    after the receiver has already acted on the first, which is exactly
    the replay the transaction-ID/epoch machinery must absorb.
    """

    start_us: float
    end_us: float
    probability: float = 0.1
    delay_us: float = 150.0

    def apply(self, built: BuiltWorkload) -> None:
        faults = built.net.faults
        saved: List[Tuple[float, float]] = []

        def begin() -> None:
            saved.append(
                (faults.duplicate_probability, faults.duplicate_delay_us)
            )
            faults.duplicate_probability = self.probability
            faults.duplicate_delay_us = self.delay_us

        def end() -> None:
            faults.duplicate_probability, faults.duplicate_delay_us = (
                saved.pop() if saved else (0.0, 150.0)
            )

        built.net.sim.at(self.start_us, begin)
        built.net.sim.at(self.end_us, end)


@dataclass(frozen=True)
class ReorderWindow:
    """Hold back a fraction of deliveries between two instants.

    A held delivery arrives ``extra_us`` late, so frames transmitted
    after it overtake it — out-of-order arrival without loss.
    """

    start_us: float
    end_us: float
    probability: float = 0.1
    extra_us: float = 400.0

    def apply(self, built: BuiltWorkload) -> None:
        faults = built.net.faults
        saved: List[Tuple[float, float]] = []

        def begin() -> None:
            saved.append(
                (faults.reorder_probability, faults.reorder_extra_us)
            )
            faults.reorder_probability = self.probability
            faults.reorder_extra_us = self.extra_us

        def end() -> None:
            faults.reorder_probability, faults.reorder_extra_us = (
                saved.pop() if saved else (0.0, 400.0)
            )

        built.net.sim.at(self.start_us, begin)
        built.net.sim.at(self.end_us, end)


@dataclass(frozen=True)
class Partition:
    """Sever all traffic between ``isolate`` roles and everyone else."""

    start_us: float
    end_us: float
    isolate: Tuple[str, ...]

    def apply(self, built: BuiltWorkload) -> None:
        group = frozenset(built.mid_of(role) for role in self.isolate)

        def crosses(frame: Frame, receiver_mid: int) -> bool:
            return (frame.src in group) != (receiver_mid in group)

        faults = built.net.faults
        built.net.sim.at(
            self.start_us, faults.add_drop_predicate, crosses
        )

        def heal() -> None:
            if crosses in faults._drop_predicates:
                faults.remove_drop_predicate(crosses)

        built.net.sim.at(self.end_us, heal)


@dataclass(frozen=True)
class TargetedDrop:
    """Arm a scripted strike: drop the ``(skip+1)``-th matching frame.

    ``ptype`` matches :attr:`Packet.ptype` by value (``"accept"``,
    ``"ack"``, ...); ``src``/``dst`` optionally pin the strike to one
    role's traffic.  Like all scripted drops this is per *frame*: a
    matching broadcast burns one unit of ``count``.
    """

    at_us: float
    ptype: str
    src: Optional[str] = None
    dst: Optional[str] = None
    skip: int = 0
    count: int = 1

    def apply(self, built: BuiltWorkload) -> None:
        src_mid = None if self.src is None else built.mid_of(self.src)
        dst_mid = None if self.dst is None else built.mid_of(self.dst)

        def matches(frame: Frame) -> bool:
            packet_type = getattr(frame.payload, "ptype", None)
            if packet_type is None or packet_type.value != self.ptype:
                return False
            if src_mid is not None and frame.src != src_mid:
                return False
            if dst_mid is not None and frame.dst != dst_mid:
                return False
            return True

        built.net.sim.at(
            self.at_us,
            built.net.faults.drop_matching,
            matches,
            self.count,
            self.skip,
        )


def _client_alive(node: SodaNode) -> bool:
    client = node.kernel.client
    return client is not None and not client.dead


@dataclass(frozen=True)
class ClientDie:
    """DIE the role's client processor (§3.6.1) mid-run."""

    at_us: float
    role: str

    def apply(self, built: BuiltWorkload) -> None:
        node = built.net.nodes[built.mid_of(self.role)]

        def fire() -> None:
            if node.kernel.offline_until is not None:
                return  # node is crashed; nothing to DIE
            if _client_alive(node):
                node.kernel.client_die()

        built.net.sim.at(self.at_us, fire)


@dataclass(frozen=True)
class NodeCrash:
    """Power-fail the role's whole node (client and kernel state lost)."""

    at_us: float
    role: str

    def apply(self, built: BuiltWorkload) -> None:
        node = built.net.nodes[built.mid_of(self.role)]

        def fire() -> None:
            if node.kernel.offline_until is None:
                node.crash()

        built.net.sim.at(self.at_us, fire)


@dataclass(frozen=True)
class Reboot:
    """Re-install the role's program from its workload factory.

    A no-op while the previous client is still alive; if the node is in
    its post-crash quiet period, the boot is deferred until it ends.
    """

    at_us: float
    role: str

    def apply(self, built: BuiltWorkload) -> None:
        mid = built.mid_of(self.role)
        node = built.net.nodes[mid]
        role = built.role_for(mid)

        def fire() -> None:
            if _client_alive(node):
                return
            boot_at = built.net.sim.now
            if node.kernel.offline_until is not None:
                boot_at = node.kernel.offline_until
            node.install_program(role.factory(), boot_at_us=boot_at)

        built.net.sim.at(self.at_us, fire)


@dataclass(frozen=True)
class ThunderingHerd:
    """Clone a role's program onto ``clones`` extra nodes at once.

    The clones boot together at ``at_us`` (staggered by ``stagger_us``
    each so their boot traffic does not serialize into lockstep) and run
    the same program factory as the named role — N clients hammering the
    one server.  This is a *load* fault, not a failure: it exercises the
    kernel's BUSY/overload admission path rather than its crash paths.

    Clone nodes get fresh auto-assigned MIDs above the workload's roles;
    they are not part of the spec, so role-addressed actions (Reboot,
    ClientDie) never touch them.
    """

    at_us: float
    role: str
    clones: int = 6
    stagger_us: float = 400.0

    def apply(self, built: BuiltWorkload) -> None:
        role = built.role_for(built.mid_of(self.role))
        # Nodes must exist before the run starts (the bus delivers only
        # to registered nodes); the *boot* is what fires at at_us.
        for i in range(self.clones):
            built.net.add_node(
                program=role.factory(),
                name=f"{self.role}-herd{i}",
                boot_at_us=self.at_us + i * self.stagger_us,
            )


@dataclass(frozen=True)
class PowerLoss:
    """Power-fail several roles *at once*, then reboot them.

    The simultaneous cut is the point: with every replica of a cluster
    down at the same instant, no surviving peer holds the state, so
    anti-entropy cannot repair an amnesiac reboot — only durable local
    state (repro.durability) brings acknowledged writes back.  The
    crash goes through :meth:`SodaNode.crash`, so each node's disk
    takes the power hit too (unsynced writes lost, possibly torn).
    """

    at_us: float
    roles: Tuple[str, ...]
    reboot_delay_us: float = 500_000.0

    @property
    def end_us(self) -> float:
        # Scenario.last_action_us keys off this: the run must extend
        # past the reboots, not just the cut.
        return self.at_us + self.reboot_delay_us

    def apply(self, built: BuiltWorkload) -> None:
        for role_name in self.roles:
            mid = built.mid_of(role_name)
            node = built.net.nodes[mid]
            role = built.role_for(mid)

            def cut(node: SodaNode = node) -> None:
                if node.kernel.offline_until is None:
                    node.crash()

            def reboot(node: SodaNode = node, role=role) -> None:
                if _client_alive(node):
                    return
                boot_at = built.net.sim.now
                if node.kernel.offline_until is not None:
                    boot_at = node.kernel.offline_until
                node.install_program(role.factory(), boot_at_us=boot_at)

            built.net.sim.at(self.at_us, cut)
            built.net.sim.at(self.at_us + self.reboot_delay_us, reboot)


#: Valid :class:`DiskFault` kinds.
DISK_FAULT_KINDS = ("torn_write", "bitrot", "fsync_drop", "disk_full")


@dataclass(frozen=True)
class DiskFault:
    """Turn a dial on the role's :class:`FaultDisk` fault plan.

    * ``torn_write`` — every future power loss tears the in-flight
      write (keeps a prefix of the unsynced stream);
    * ``bitrot`` — flip ``count`` random bits in durable files whose
      name contains ``match`` (default: the WAL segments);
    * ``fsync_drop`` — the next ``count`` fsyncs lie: report success,
      persist nothing;
    * ``disk_full`` — reject writes after ``count`` more bytes.

    A no-op on diskless roles or honest disks, so the one schedule
    sweeps every workload.
    """

    at_us: float
    role: str
    kind: str
    count: int = 1
    match: str = "wal"

    def __post_init__(self) -> None:
        if self.kind not in DISK_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {DISK_FAULT_KINDS}, got {self.kind!r}"
            )

    def apply(self, built: BuiltWorkload) -> None:
        node = built.net.nodes[built.mid_of(self.role)]

        def fire() -> None:
            disk = getattr(node, "disk", None)
            plan = getattr(disk, "plan", None)
            if plan is None:
                return
            if self.kind == "torn_write":
                plan.torn_write_probability = 1.0
            elif self.kind == "bitrot":
                disk.flip_bits(self.match, self.count)
            elif self.kind == "fsync_drop":
                plan.fsync_drop_next += self.count
            elif self.kind == "disk_full":
                plan.full_after_bytes = self.count

        built.net.sim.at(self.at_us, fire)


Action = Union[
    LossWindow,
    DuplicateWindow,
    ReorderWindow,
    Partition,
    TargetedDrop,
    ClientDie,
    NodeCrash,
    Reboot,
    ThunderingHerd,
    PowerLoss,
    DiskFault,
]

#: Action classes, exported for reproducer scripts.
ACTION_TYPES: Tuple[type, ...] = (
    LossWindow,
    DuplicateWindow,
    ReorderWindow,
    Partition,
    TargetedDrop,
    ClientDie,
    NodeCrash,
    Reboot,
    ThunderingHerd,
    PowerLoss,
    DiskFault,
)


@dataclass(frozen=True)
class Scenario:
    """A named, ordered fault schedule."""

    name: str
    actions: Tuple[Action, ...]

    def apply(self, built: BuiltWorkload) -> None:
        for action in self.actions:
            action.apply(built)

    @property
    def last_action_us(self) -> float:
        """The latest instant any action touches the run."""
        latest = 0.0
        for action in self.actions:
            for attr in ("at_us", "end_us"):
                value = getattr(action, attr, None)
                if value is not None:
                    latest = max(latest, value)
        return latest

    def without(self, index: int) -> "Scenario":
        """A copy with one action removed (shrinking step)."""
        remaining = self.actions[:index] + self.actions[index + 1 :]
        return Scenario(name=self.name, actions=remaining)
