"""Static and dynamic correctness tooling for SODA programs.

Two halves:

* **sodalint** — an AST-based linter (:mod:`repro.analysis.linter`,
  :mod:`repro.analysis.rules`) that walks SODA client programs and
  reports protocol misuse the kernel cannot catch at runtime: blocking
  task-level primitives in handler context, ADVERTISE of reserved
  patterns, fire-and-forget REQUESTs, handler re-entry, discarded
  generator/future results, and direct mutation of kernel-owned state.
* **trace invariant checker** — :mod:`repro.analysis.invariants` replays
  :class:`~repro.sim.tracing.Tracer` records after a run and asserts
  machine-checkable transport invariants: alternating-bit sequence
  alternation, retransmission bounds, handler non-nesting,
  delivered-request completion, and cost-ledger consistency.
* **causal analysis engine** — :mod:`repro.analysis.causal` builds a
  vector-clock happens-before relation over the same records, runs the
  SODA010-013 race/deadlock rules, and provides the streaming
  (O(open-state)) rewrite of the invariant checker.

See ``docs/ANALYSIS.md`` for the rule table and extension guide.
"""

from repro.analysis.causal import (
    CausalDiagnostic,
    CausalOrder,
    IncrementalChecker,
    build_causal_order,
    check_stream,
    detect_deadlocks,
    find_races,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    check_network,
    check_network_degraded,
)
from repro.analysis.linter import LintConfig, Linter, lint_paths
from repro.analysis.rules import LintRule, all_rules, get_rule, register_rule
from repro.analysis.workloads import (
    CAUSAL_WORKLOADS,
    WORKLOADS,
    BuiltWorkload,
    WorkloadRole,
    WorkloadSpec,
    build_workload,
    run_workload,
)

__all__ = [
    "CausalDiagnostic",
    "CausalOrder",
    "Diagnostic",
    "IncrementalChecker",
    "Severity",
    "build_causal_order",
    "check_stream",
    "detect_deadlocks",
    "find_races",
    "CAUSAL_WORKLOADS",
    "LintRule",
    "register_rule",
    "get_rule",
    "all_rules",
    "LintConfig",
    "Linter",
    "lint_paths",
    "InvariantChecker",
    "InvariantViolation",
    "check_network",
    "check_network_degraded",
    "WORKLOADS",
    "BuiltWorkload",
    "WorkloadRole",
    "WorkloadSpec",
    "build_workload",
    "run_workload",
]
