"""Post-run trace invariant checking.

Replays a :class:`~repro.sim.tracing.Tracer` record stream and asserts
transport invariants that must hold on every run:

* **INV-SEQ** — alternating-bit correctness per directed connection: a
  retransmission never changes its sequence bit, and a *new* message
  flips the bit of the previous one (unless a BUSY park swapped the
  channel, the peer was declared dead, or the sender crashed — the three
  legitimate resynchronization points, §5.2.2-§5.2.3).
* **INV-DELTAT** — bounded retransmission: absent BUSY NACKs, a message
  is transmitted at most ``max_ack_attempts`` times, inside the window
  the retransmit policy allows, before the peer is declared dead.
* **INV-HANDLER** — handler invocations never nest (§3.2): interrupt
  and ENDHANDLER records strictly alternate per node.
* **INV-COMPLETE** — every DELIVERED request reaches a terminal state
  (DONE or CANCELLED) through legal transitions; in strict mode a
  request still sitting DELIVERED/ACCEPTED at the end of the run is a
  leak.
* **INV-LEDGER** — the cost ledger's total equals the sum of the
  per-category charges, categories are known, and no charge is negative.
* **SODA007** — BUSY retry earlier than hinted: when a BUSY NACK
  carries an explicit retry hint (the overload controller's widened
  decaying-rate hint, §5.2.3 + ISSUE 5), the client must not
  retransmit the nacked message before the hinted delay has elapsed.
  The rule binds a client only to hints that actually *reached* it
  (the ``hint`` field on its own ``kernel.rx`` record), and a priority
  swap (§5.2.3) releases the parked message from the constraint.

The checker consumes the extra record fields the kernel emits for it
(``seq``/``pid``/``ack``/``nack`` on ``kernel.tx``/``kernel.rx``,
``kernel.endhandler``, ``kernel.delivered_state``,
``kernel.client_reset``); traces captured with ``keep_records=False``
cannot be checked.  Ring-buffer traces that dropped records
(``trace.truncated``) cannot be replayed either, but
:func:`check_network_degraded` still audits what survives truncation:
record counters, live kernel state, and the cost ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.tracing import CostLedger, Tracer
from repro.transport.retransmit import RetransmitPolicy

#: Delivered-request states considered terminal.
_TERMINAL = frozenset({"done", "cancelled"})

#: Legal delivered-state transitions (server side, §3.3.2).
_TRANSITIONS = {
    None: {"delivered"},
    "delivered": {"accepted", "cancelled", "done"},
    "accepted": {"done", "cancelled"},
    "done": set(),
    "cancelled": set(),
}


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, anchored to the trace."""

    invariant: str
    time: float
    mid: Optional[int]
    message: str

    def format(self) -> str:
        where = f"mid={self.mid}" if self.mid is not None else "-"
        return (
            f"t={self.time/1000.0:.3f}ms {self.invariant} [{where}] "
            f"{self.message}"
        )

    def __str__(self) -> str:
        return self.format()


@dataclass
class _PidState:
    seq: int
    first_us: float
    last_us: float
    count: int = 1
    data_bytes: int = 0
    busy: bool = False
    tid: Optional[int] = None


@dataclass
class _SendState:
    """Send-direction tracking for one (sender, peer) pair."""

    last_new_seq: Optional[int] = None
    #: A BUSY NACK or dead-peer declaration since the last new message
    #: legitimizes a non-flipping sequence bit on the next one.
    resync_ok: bool = False
    pids: Dict[int, _PidState] = field(default_factory=dict)
    #: SODA007: pid -> earliest time its next transmission may occur,
    #: set when a BUSY NACK carrying an explicit retry hint arrives.
    busy_hint: Dict[int, float] = field(default_factory=dict)


class InvariantChecker:
    """Replays one trace and collects violations."""

    def __init__(
        self,
        network=None,
        strict_completion: bool = True,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        self.network = network
        self.strict_completion = strict_completion
        self._default_policy = policy or RetransmitPolicy()

    # ------------------------------------------------------------------

    def _policy_for(self, mid: int) -> RetransmitPolicy:
        if self.network is not None:
            node = self.network.nodes.get(mid)
            if node is not None:
                return node.kernel.config.retransmit
        return self._default_policy

    def check(
        self, trace: Tracer, ledger: Optional[CostLedger] = None
    ) -> List[InvariantViolation]:
        violations: List[InvariantViolation] = []
        send: Dict[Tuple[int, int], _SendState] = {}
        handler_depth: Dict[int, int] = {}
        delivered: Dict[Tuple[int, int, int], str] = {}
        end_time = 0.0

        for rec in trace.records:
            end_time = max(end_time, rec.time)
            category = rec.category
            if category == "kernel.tx":
                self._on_tx(rec, send, violations)
            elif category == "kernel.rx":
                if rec.get("nack") == "busy":
                    state = send.get((rec["mid"], rec["src"]))
                    if state is not None:
                        state.resync_ok = True
                        hint = rec.get("hint")
                        for pid, pid_state in state.pids.items():
                            pid_state.busy = True
                            # SODA007: the hinted delay binds the nacked
                            # message (matched by tid) from the moment
                            # the hint reached this client.
                            if (
                                hint is not None
                                and pid_state.tid is not None
                                and pid_state.tid == rec.get("tid")
                            ):
                                state.busy_hint[pid] = rec.time + hint
            elif category == "conn.peer_dead":
                state = send.get((rec["mid"], rec["peer"]))
                if state is not None:
                    state.resync_ok = True
                    state.busy_hint.clear()
            elif category == "conn.seq_swap":
                # A priority message displaced a BUSY-parked one
                # (§5.2.3): the parked message's next transmission is a
                # fresh send with a new bit, and the taker reuses the
                # parked one's bit.
                state = send.get((rec["mid"], rec["peer"]))
                if state is not None:
                    state.pids.pop(rec["parked_pid"], None)
                    state.busy_hint.pop(rec["parked_pid"], None)
                    state.resync_ok = True
            elif category == "kernel.interrupt":
                mid = rec["mid"]
                depth = handler_depth.get(mid, 0) + 1
                handler_depth[mid] = depth
                if depth > 1:
                    violations.append(
                        InvariantViolation(
                            "INV-HANDLER",
                            rec.time,
                            mid,
                            f"handler invoked while a previous invocation "
                            f"is still open (depth {depth}); handlers "
                            f"must never nest",
                        )
                    )
            elif category == "kernel.endhandler":
                mid = rec["mid"]
                handler_depth[mid] = max(0, handler_depth.get(mid, 0) - 1)
            elif category == "kernel.delivered_state":
                self._on_delivered(rec, delivered, violations)
            elif category in ("kernel.crash", "kernel.client_reset", "kernel.die"):
                mid = rec["mid"]
                handler_depth[mid] = 0
                for key in [k for k in delivered if k[0] == mid]:
                    del delivered[key]
                if category == "kernel.crash":
                    for key in [k for k in send if k[0] == mid]:
                        del send[key]

        self._finalize_pids(send, violations)
        if self.strict_completion:
            for (mid, src, tid), state in sorted(delivered.items()):
                if state not in _TERMINAL:
                    violations.append(
                        InvariantViolation(
                            "INV-COMPLETE",
                            end_time,
                            mid,
                            f"request <{src},{tid}> left in state "
                            f"'{state}' at end of run (never reached "
                            f"DONE/CANCELLED)",
                        )
                    )
        if ledger is not None:
            self._check_ledger(ledger, end_time, violations)
        return violations

    # ------------------------------------------------------------------

    def _on_tx(
        self,
        rec,
        send: Dict[Tuple[int, int], _SendState],
        violations: List[InvariantViolation],
    ) -> None:
        seq = rec.get("seq")
        pid = rec.get("pid")
        if seq is None or pid is None:
            return  # unsequenced traffic (acks, probes, discover, ...)
        mid, dst = rec["mid"], rec["dst"]
        if seq not in (0, 1):
            violations.append(
                InvariantViolation(
                    "INV-SEQ", rec.time, mid,
                    f"sequence bit {seq!r} is not alternating-bit",
                )
            )
            return
        state = send.setdefault((mid, dst), _SendState())
        pid_state = state.pids.get(pid)
        if pid_state is not None:
            if seq != pid_state.seq:
                violations.append(
                    InvariantViolation(
                        "INV-SEQ",
                        rec.time,
                        mid,
                        f"retransmission of pkt#{pid} to {dst} changed "
                        f"its sequence bit {pid_state.seq} -> {seq}",
                    )
                )
            earliest = state.busy_hint.pop(pid, None)
            if earliest is not None and rec.time < earliest - 1.0:
                violations.append(
                    InvariantViolation(
                        "SODA007",
                        rec.time,
                        mid,
                        f"BUSY retry of pkt#{pid} to {dst} sent "
                        f"{(earliest - rec.time)/1000.0:.1f}ms earlier "
                        f"than the retry hint allowed; clients must "
                        f"honor the decaying-rate hint (§5.2.3)",
                    )
                )
            pid_state.count += 1
            pid_state.last_us = rec.time
            return
        if (
            state.last_new_seq is not None
            and not state.resync_ok
            and seq != 1 - state.last_new_seq
        ):
            violations.append(
                InvariantViolation(
                    "INV-SEQ",
                    rec.time,
                    mid,
                    f"new message pkt#{pid} to {dst} reused sequence bit "
                    f"{seq} (previous message was not acknowledged with "
                    f"an alternation)",
                )
            )
        state.last_new_seq = seq
        state.resync_ok = False
        state.pids[pid] = _PidState(
            seq=seq,
            first_us=rec.time,
            last_us=rec.time,
            data_bytes=rec.get("bytes", 0) or 0,
            tid=rec.get("tid"),
        )

    def _finalize_pids(
        self,
        send: Dict[Tuple[int, int], _SendState],
        violations: List[InvariantViolation],
    ) -> None:
        for (mid, dst), state in sorted(send.items()):
            policy = self._policy_for(mid)
            for pid, ps in sorted(state.pids.items()):
                if ps.busy:
                    continue  # BUSY retries are unbounded by design
                if ps.count > policy.max_ack_attempts:
                    violations.append(
                        InvariantViolation(
                            "INV-DELTAT",
                            ps.last_us,
                            mid,
                            f"pkt#{pid} to {dst} transmitted {ps.count} "
                            f"times; the policy allows at most "
                            f"{policy.max_ack_attempts} before declaring "
                            f"the peer dead",
                        )
                    )
                    continue
                # The policy states its own worst-case window (the same
                # bound deltat_for_policy harmonizes Delta-t's R with),
                # so the check holds for static and adaptive alike.
                # Kernel-CPU serialization can push a retransmission out
                # a little past its timer; allow a generous margin.
                bound = (
                    policy.retry_window_bound_us(ps.count, ps.data_bytes)
                    * 1.5
                    + 10_000.0
                )
                span = ps.last_us - ps.first_us
                if span > bound:
                    violations.append(
                        InvariantViolation(
                            "INV-DELTAT",
                            ps.last_us,
                            mid,
                            f"pkt#{pid} to {dst} retransmitted over "
                            f"{span/1000.0:.1f}ms ({ps.count} sends); "
                            f"Delta-t bounds the window at "
                            f"{bound/1000.0:.1f}ms",
                        )
                    )

    def _on_delivered(
        self,
        rec,
        delivered: Dict[Tuple[int, int, int], str],
        violations: List[InvariantViolation],
    ) -> None:
        key = (rec["mid"], rec["src"], rec["tid"])
        new = rec["state"]
        old = delivered.get(key)
        allowed: Set[str] = _TRANSITIONS.get(old, set())
        if new not in allowed:
            violations.append(
                InvariantViolation(
                    "INV-COMPLETE",
                    rec.time,
                    rec["mid"],
                    f"request <{key[1]},{key[2]}> made illegal "
                    f"transition {old!r} -> {new!r}",
                )
            )
        delivered[key] = new

    def _check_ledger(
        self,
        ledger: CostLedger,
        end_time: float,
        violations: List[InvariantViolation],
    ) -> None:
        snapshot = ledger.snapshot()
        total = ledger.total()
        if abs(total - sum(snapshot.values())) > 1e-6:
            violations.append(
                InvariantViolation(
                    "INV-LEDGER",
                    end_time,
                    None,
                    f"ledger total {total} != sum of per-category "
                    f"charges {sum(snapshot.values())}",
                )
            )
        for category, value in sorted(snapshot.items()):
            if category not in CostLedger.CATEGORIES:
                violations.append(
                    InvariantViolation(
                        "INV-LEDGER", end_time, None,
                        f"unknown cost category {category!r}",
                    )
                )
            if value < 0:
                violations.append(
                    InvariantViolation(
                        "INV-LEDGER", end_time, None,
                        f"negative charge {value} in {category!r}",
                    )
                )


def check_network(
    net, strict_completion: bool = True
) -> List[InvariantViolation]:
    """Check a finished :class:`~repro.core.node.Network` run."""
    checker = InvariantChecker(
        network=net, strict_completion=strict_completion
    )
    return checker.check(net.sim.trace, ledger=net.ledger)


def _timer_live(timer) -> bool:
    return timer is not None and not timer.cancelled


def check_network_degraded(net) -> List[InvariantViolation]:
    """Best-effort checks for runs whose ring-buffer trace lost records.

    A truncated trace cannot be replayed — the missing prefix holds the
    first transmissions, handler entries, and delivered-state
    transitions the full checker keys on.  But two sources survive
    truncation intact and can still be audited:

    * the tracer's **counters**, which count every record ever emitted
      regardless of retention — handler entries and exits must balance
      to the number of handlers legitimately still open (at most one
      per node, INV-HANDLER);
    * the **live kernel state** at the horizon — closed requests must
      not hold armed probe timers, and no connection may sit with an
      outstanding message and no armed timer;

    plus the cost ledger (INV-LEDGER), which is cumulative and
    unaffected by record retention.
    """
    violations: List[InvariantViolation] = []
    now = net.sim.now
    counters = net.sim.trace.counters

    # Boot handlers (Initialization) enter via ``kernel.boot_handler``,
    # everything else via ``kernel.interrupt``; both exit through
    # ``kernel.endhandler``.  At the horizon at most one handler per
    # node may legitimately still be open.
    entered = counters.get("kernel.interrupt", 0) + counters.get(
        "kernel.boot_handler", 0
    )
    exited = counters.get("kernel.endhandler", 0)
    open_handlers = entered - exited
    if not 0 <= open_handlers <= len(net.nodes):
        violations.append(
            InvariantViolation(
                "INV-HANDLER",
                now,
                None,
                f"handler entry/exit counters do not balance: "
                f"{entered} entries vs {exited} ENDHANDLERs leaves "
                f"{open_handlers} open across {len(net.nodes)} node(s)",
            )
        )

    for mid in sorted(net.nodes):
        kernel = net.nodes[mid].kernel
        for tid in sorted(kernel.requests):
            record = kernel.requests[tid]
            if record.open:
                continue
            for attr in ("probe_timer", "probe_deadline"):
                if _timer_live(getattr(record, attr)):
                    violations.append(
                        InvariantViolation(
                            "INV-DELTAT",
                            now,
                            mid,
                            f"closed request #{tid} still holds a live "
                            f"{attr}",
                        )
                    )
        for peer in sorted(kernel.connections):
            conn = kernel.connections[peer]
            if conn.outstanding is None:
                continue
            if not (
                _timer_live(conn._retransmit_timer)
                or _timer_live(conn._busy_timer)
            ):
                violations.append(
                    InvariantViolation(
                        "INV-DELTAT",
                        now,
                        mid,
                        f"connection to {peer} wedged: outstanding "
                        f"{conn.outstanding.kind!r} with no armed timer",
                    )
                )

    InvariantChecker(network=net)._check_ledger(net.ledger, now, violations)
    return violations
