"""Typed lint diagnostics."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` diagnostics make ``python -m repro lint`` exit non-zero;
    ``WARNING`` diagnostics are reported but do not fail the run.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source location."""

    rule_id: str
    message: str
    file: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        """Machine-readable form for ``lint --json`` snapshots."""
        return {
            "rule_id": self.rule_id,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }

    def __str__(self) -> str:
        return self.format()
