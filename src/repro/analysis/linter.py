"""The sodalint driver: file discovery, pragmas, config, reporting.

Pragmas
-------

``# sodalint: disable=SODA003`` at the end of a code line suppresses the
named rule(s) on that line only; on a line of its own it suppresses them
for the whole file.  ``disable=all`` (or a bare ``disable``) suppresses
everything.  Rule lists are comma-separated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.model import build_model
from repro.analysis.rules import LintRule, all_rules

#: Rule id of the parse-failure pseudo-diagnostic.
PARSE_ERROR_RULE = "SODA000"

_PRAGMA_RE = re.compile(
    r"#\s*sodalint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+))?"
)


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection.

    ``disabled`` rules never fire; if ``enabled_only`` is non-empty, only
    those rules fire.  Pragmas in the source are applied on top.
    """

    disabled: frozenset = frozenset()
    enabled_only: frozenset = frozenset()

    def rule_active(self, rule_id: str) -> bool:
        if rule_id in self.disabled:
            return False
        if self.enabled_only and rule_id not in self.enabled_only:
            return False
        return True


@dataclass
class _Pragmas:
    """Suppressions harvested from one file's comments."""

    file_wide: Set[str] = field(default_factory=set)   # rule ids or "all"
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, diag: Diagnostic) -> bool:
        if "all" in self.file_wide or diag.rule_id in self.file_wide:
            return True
        rules = self.by_line.get(diag.line, ())
        return "all" in rules or diag.rule_id in rules


def _harvest_pragmas(lines: Sequence[str]) -> _Pragmas:
    pragmas = _Pragmas()
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        rules = (
            {part.strip() for part in spec.split(",") if part.strip()}
            if spec
            else {"all"}
        )
        before = line[: match.start()].strip()
        if before:
            pragmas.by_line.setdefault(lineno, set()).update(rules)
        else:
            pragmas.file_wide.update(rules)
    return pragmas


class Linter:
    """Run a rule set over source files."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[LintRule]] = None,
    ) -> None:
        self.config = config or LintConfig()
        self._rules = list(rules) if rules is not None else None

    @property
    def rules(self) -> List[LintRule]:
        # Resolved lazily so rules registered after construction (e.g.
        # by an extension module imported later) still participate.
        return self._rules if self._rules is not None else all_rules()

    def lint_source(self, source: str, path: str) -> List[Diagnostic]:
        try:
            model = build_model(source, path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    rule_id=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                    file=path,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                    severity=Severity.ERROR,
                )
            ]
        pragmas = _harvest_pragmas(model.lines)
        out: List[Diagnostic] = []
        for rule in self.rules:
            if not self.config.rule_active(rule.rule_id):
                continue
            for diag in rule.check(model):
                if not pragmas.suppressed(diag):
                    out.append(diag)
        out.sort(key=lambda d: (d.file, d.line, d.col, d.rule_id))
        return out

    def lint_file(self, path) -> List[Diagnostic]:
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"), str(path)
        )


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable, config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Lint files and directories; returns all diagnostics found."""
    linter = Linter(config)
    out: List[Diagnostic] = []
    for path in iter_python_files(paths):
        out.extend(linter.lint_file(path))
    # Global stable order across files, not just within each: tooling
    # diffing two lint runs (CI, --json snapshots) must never see
    # findings reordered by directory traversal details.
    out.sort(key=lambda d: (d.file, d.line, d.col, d.rule_id))
    return out


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)
