"""Named trace workloads for ``python -m repro check-trace``.

Each workload builds a small network with tracing on, runs it to
quiescence, and returns the :class:`~repro.core.node.Network` so the
invariant checker can replay the trace.  The set is chosen to exercise
the protocol paths the checker watches: plain exchanges (echo), streamed
non-blocking requests (stream), BUSY parking and queued accepts
(queued), and the CANCEL path (cancel).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.workloads import (
    BENCH_PATTERN,
    AcceptingServer,
    BlockingSignaler,
    QueuedServer,
    StreamingRequester,
)
from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.node import Network
from repro.core.patterns import make_well_known_pattern

ECHO_PATTERN = make_well_known_pattern(0o347)


class _EchoServer(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(get=buf, put=b"pong")


class _EchoClient(ClientProgram):
    def __init__(self, rounds: int = 4) -> None:
        self.rounds = rounds
        self.completions: List[str] = []

    def task(self, api):
        server = yield from api.discover(ECHO_PATTERN)
        for i in range(self.rounds):
            reply = Buffer(16)
            completion = yield from api.b_exchange(
                server, put=b"ping%d" % i, get=reply
            )
            self.completions.append(completion.status.value)
        yield from api.serve_forever()


class _SlowServer(ClientProgram):
    """Accepts after burning handler time; provokes BUSY NACKs."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            yield api.compute(30_000.0)
            yield from api.accept_current_signal()


class _NeverAcceptServer(ClientProgram):
    """Leaves arrivals DELIVERED so the requester can CANCEL them."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        return
        yield  # pragma: no cover


class _CancellingClient(ClientProgram):
    def __init__(self) -> None:
        self.cancel_status = None

    def task(self, api):
        server = yield from api.discover(ECHO_PATTERN)
        tid = yield from api.signal(server)
        # Give the REQUEST time to be delivered, then withdraw it.
        yield api.compute(150_000.0)
        self.cancel_status = yield from api.cancel(tid)
        yield from api.serve_forever()


def _echo() -> Network:
    net = Network(seed=11)
    net.add_node(program=_EchoServer(), name="server")
    net.add_node(program=_EchoClient(), name="client", boot_at_us=100.0)
    net.run(until=5_000_000.0)
    return net


def _stream() -> Network:
    net = Network(seed=12)
    net.add_node(program=AcceptingServer(reply_bytes=8), name="server")
    net.add_node(
        program=StreamingRequester(put_bytes=32, get_bytes=8, total=12),
        name="client",
        boot_at_us=100.0,
    )
    net.run(until=60_000_000.0)
    return net


def _queued() -> Network:
    net = Network(seed=13)
    net.add_node(program=QueuedServer(reply_bytes=0), name="server")
    net.add_node(
        program=StreamingRequester(put_bytes=0, get_bytes=0, total=8),
        name="client",
        boot_at_us=100.0,
    )
    net.run(until=60_000_000.0)
    return net


def _busy() -> Network:
    net = Network(seed=14)
    net.add_node(program=_SlowServer(), name="server")

    class Pinger(ClientProgram):
        def task(self, api):
            server = api.server_sig(0, ECHO_PATTERN)
            for _ in range(3):
                yield from api.b_signal(server)
            yield from api.serve_forever()

    net.add_node(program=Pinger(), name="c1", boot_at_us=100.0)
    net.add_node(program=Pinger(), name="c2", boot_at_us=150.0)
    net.run(until=60_000_000.0)
    return net


def _cancel() -> Network:
    net = Network(seed=15)
    net.add_node(program=_NeverAcceptServer(), name="server")
    net.add_node(program=_CancellingClient(), name="client", boot_at_us=100.0)
    net.run(until=10_000_000.0)
    return net


def _signal() -> Network:
    """Blocking B_SIGNALs against BENCH_PATTERN — the §5.5 scenario."""
    net = Network(seed=16)
    net.add_node(program=AcceptingServer(), name="server")
    net.add_node(
        program=BlockingSignaler(total=6), name="client", boot_at_us=100.0
    )
    net.run(until=60_000_000.0)
    return net


WORKLOADS: Dict[str, Callable[[], Network]] = {
    "echo": _echo,
    "stream": _stream,
    "queued": _queued,
    "busy": _busy,
    "cancel": _cancel,
    "signal": _signal,
}


def run_workload(name: str) -> Network:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(WORKLOADS))}"
        ) from None
    return factory()
