"""Named trace workloads for ``python -m repro check-trace`` and the
chaos harness.

Each workload is described by a :class:`WorkloadSpec`: a seed, a run
horizon, and an ordered list of node *roles* (name, zero-arg program
factory, boot time).  Separating *build* from *run* lets the chaos
harness (``repro.chaos``) construct the network, overlay a fault
schedule, and reboot nodes mid-run from the same role factories —
while :func:`run_workload` keeps the original one-call behaviour (same
seeds, same horizons) for the CLI and tests.

The set is chosen to exercise the protocol paths the invariant checker
watches: plain exchanges (echo), streamed non-blocking requests
(stream), BUSY parking and queued accepts (queued), and the CANCEL path
(cancel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.workloads import (
    BENCH_PATTERN,
    AcceptingServer,
    BlockingSignaler,
    QueuedServer,
    StreamingRequester,
)
from repro.apps.philosophers import Philosopher
from repro.core.boot import ProgramImage
from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.config import KernelConfig
from repro.core.node import Network
from repro.core.patterns import make_well_known_pattern
from repro.durability.disk import DiskFaultPlan, FaultDisk, SimDisk
from repro.net.errors import FaultPlan
from repro.recovery.retry import RetryPolicy, retry_request
from repro.recovery.supervisor import SupervisedService, SupervisorProgram
from repro.replication import (
    KvClient,
    KvFailoverSupervisor,
    KvReplica,
    REPL_PATTERN,
)

__all__ = [
    "BENCH_PATTERN",
    "CAUSAL_WORKLOADS",
    "ECHO_PATTERN",
    "WORKLOADS",
    "BuiltWorkload",
    "WorkloadRole",
    "WorkloadSpec",
    "build_workload",
    "run_workload",
]

ECHO_PATTERN = make_well_known_pattern(0o347)


class _EchoServer(ClientProgram):
    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            buf = Buffer(event.put_size)
            yield from api.accept_current_exchange(get=buf, put=b"pong")


class _EchoClient(ClientProgram):
    def __init__(self, rounds: int = 4) -> None:
        self.rounds = rounds
        self.completions: List[str] = []

    def task(self, api):
        server = yield from api.discover(ECHO_PATTERN)
        for i in range(self.rounds):
            reply = Buffer(16)
            completion = yield from api.b_exchange(
                server, put=b"ping%d" % i, get=reply
            )
            self.completions.append(completion.status.value)
        yield from api.serve_forever()


class _SlowServer(ClientProgram):
    """Accepts after burning handler time; provokes BUSY NACKs."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        if event.is_arrival:
            yield api.compute(30_000.0)
            yield from api.accept_current_signal()


class _NeverAcceptServer(ClientProgram):
    """Leaves arrivals DELIVERED so the requester can CANCEL them."""

    def initialization(self, api, parent_mid):
        yield from api.advertise(ECHO_PATTERN)

    def handler(self, api, event):
        return
        yield  # pragma: no cover


class _CancellingClient(ClientProgram):
    def __init__(self) -> None:
        self.cancel_status = None

    def task(self, api):
        server = yield from api.discover(ECHO_PATTERN)
        tid = yield from api.signal(server)
        # Give the REQUEST time to be delivered, then withdraw it.
        yield api.compute(150_000.0)
        self.cancel_status = yield from api.cancel(tid)
        yield from api.serve_forever()


class _RetryClient(ClientProgram):
    """Issues a paced stream of echo ops through the safe-retry shim.

    Survives server crashes mid-stream: provably-unexecuted failures are
    re-issued against the rebooted incarnation, ambiguous ones resolve
    to MAYBE (never a silent double execution).
    """

    def __init__(self, total: int = 10, gap_us: float = 300_000.0) -> None:
        self.total = total
        self.gap_us = gap_us
        self.outcomes: List[str] = []

    def task(self, api):
        policy = RetryPolicy(max_attempts=6, deadline_us=6_000_000.0)
        for i in range(self.total):
            outcome = yield from retry_request(
                api,
                ECHO_PATTERN,
                put=b"op%d" % i,
                get=16,
                policy=policy,
            )
            self.outcomes.append(outcome.status)
            yield api.compute(self.gap_us)
        yield from api.serve_forever()


def _make_supervisor() -> SupervisorProgram:
    return SupervisorProgram(
        services=(
            SupervisedService(
                name="server",
                mid=0,
                pattern=ECHO_PATTERN,
                image=ProgramImage(
                    "echo-server", _EchoServer, size_bytes=2048
                ),
            ),
        ),
    )


class _Pinger(ClientProgram):
    def __init__(self, rounds: int = 3) -> None:
        self.rounds = rounds

    def task(self, api):
        server = api.server_sig(0, ECHO_PATTERN)
        for _ in range(self.rounds):
            yield from api.b_signal(server)
        yield from api.serve_forever()


#: The replicated KV store's cluster shape (MIDs = role indexes 0..2).
KV_REPLICAS = 3
KV_QUORUM = 2


def _kv_replica(index: int, claim_primary: bool = False) -> KvReplica:
    peers = tuple(i for i in range(KV_REPLICAS) if i != index)
    return KvReplica(
        index=index,
        peer_mids=peers,
        quorum=KV_QUORUM,
        claim_primary=claim_primary,
    )


def _kv_disk(index: int):
    """A replica's disk: simulated media behind an (initially quiet)
    fault plan, so chaos ``DiskFault`` actions have a dial to turn."""
    return FaultDisk(SimDisk(), DiskFaultPlan(seed=100 + index))


def _kv_roles() -> Tuple["WorkloadRole", ...]:
    return (
        # replica0 claims the first epoch through the vote protocol; a
        # chaos Reboot of this role re-runs the claim, which is exactly
        # the stale-primary-resurfacing case epoch fencing must fence.
        WorkloadRole(
            "replica0",
            lambda: _kv_replica(0, claim_primary=True),
            disk_factory=lambda: _kv_disk(0),
        ),
        WorkloadRole(
            "replica1",
            lambda: _kv_replica(1),
            boot_at_us=20.0,
            disk_factory=lambda: _kv_disk(1),
        ),
        WorkloadRole(
            "replica2",
            lambda: _kv_replica(2),
            boot_at_us=40.0,
            disk_factory=lambda: _kv_disk(2),
        ),
    )


def _make_kv_supervisor() -> KvFailoverSupervisor:
    services = tuple(
        SupervisedService(
            name=f"replica{i}",
            mid=i,
            pattern=REPL_PATTERN,
            # Reboot images rejoin as backups: a node that lost its
            # memory must never boot straight back into primaryship.
            image=ProgramImage(
                f"kv-replica-{i}",
                (lambda i=i: _kv_replica(i)),
                size_bytes=2048,
            ),
        )
        for i in range(KV_REPLICAS)
    )
    return KvFailoverSupervisor(
        services=services,
        replica_mids=tuple(range(KV_REPLICAS)),
        quorum=KV_QUORUM,
    )


@dataclass(frozen=True)
class WorkloadRole:
    """One node of a workload: MIDs are assigned in listing order."""

    name: str
    factory: Callable[[], ClientProgram]
    boot_at_us: float = 0.0
    #: Builds this node's durable disk (fresh per build — disks must
    #: never leak across chaos cells).  None = diskless (SODA default).
    disk_factory: Optional[Callable[[], object]] = None


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload: seed + horizon + node roles."""

    name: str
    seed: int
    until_us: float
    roles: Tuple[WorkloadRole, ...]
    #: Role names watched by an in-workload supervisor; the chaos
    #: runner's self-heal judgment (repro.recovery.convergence) applies
    #: only to these.
    supervised: Tuple[str, ...] = ()


@dataclass
class BuiltWorkload:
    """A constructed-but-not-yet-run workload network.

    ``net`` has one node per spec role (MID = role index) with the
    role's program installed.  The chaos harness reboots a dead node's
    client by calling its role factory again.
    """

    spec: WorkloadSpec
    net: Network

    def role_for(self, mid: int) -> WorkloadRole:
        return self.spec.roles[mid]

    def mid_of(self, role_name: str) -> int:
        for mid, role in enumerate(self.spec.roles):
            if role.name == role_name:
                return mid
        raise KeyError(
            f"workload {self.spec.name!r} has no role {role_name!r}"
        )

    def run(self) -> Network:
        self.net.run(until=self.spec.until_us)
        return self.net


WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "echo",
            seed=11,
            until_us=5_000_000.0,
            roles=(
                WorkloadRole("server", _EchoServer),
                WorkloadRole("client", _EchoClient, boot_at_us=100.0),
            ),
        ),
        WorkloadSpec(
            "stream",
            seed=12,
            until_us=60_000_000.0,
            roles=(
                WorkloadRole(
                    "server", lambda: AcceptingServer(reply_bytes=8)
                ),
                WorkloadRole(
                    "client",
                    lambda: StreamingRequester(
                        put_bytes=32, get_bytes=8, total=12
                    ),
                    boot_at_us=100.0,
                ),
            ),
        ),
        WorkloadSpec(
            "queued",
            seed=13,
            until_us=60_000_000.0,
            roles=(
                WorkloadRole("server", lambda: QueuedServer(reply_bytes=0)),
                WorkloadRole(
                    "client",
                    lambda: StreamingRequester(
                        put_bytes=0, get_bytes=0, total=8
                    ),
                    boot_at_us=100.0,
                ),
            ),
        ),
        WorkloadSpec(
            "busy",
            seed=14,
            until_us=60_000_000.0,
            roles=(
                WorkloadRole("server", _SlowServer),
                WorkloadRole("c1", _Pinger, boot_at_us=100.0),
                WorkloadRole("c2", _Pinger, boot_at_us=150.0),
            ),
        ),
        WorkloadSpec(
            "cancel",
            seed=15,
            until_us=10_000_000.0,
            roles=(
                WorkloadRole("server", _NeverAcceptServer),
                WorkloadRole("client", _CancellingClient, boot_at_us=100.0),
            ),
        ),
        WorkloadSpec(
            "supervised",
            seed=17,
            until_us=10_000_000.0,
            roles=(
                WorkloadRole("server", _EchoServer),
                WorkloadRole("supervisor", _make_supervisor, boot_at_us=50.0),
                WorkloadRole("client", _RetryClient, boot_at_us=100.0),
            ),
            supervised=("server",),
        ),
        WorkloadSpec(
            "kvstore",
            seed=18,
            until_us=20_000_000.0,
            roles=_kv_roles()
            + (WorkloadRole("client", KvClient, boot_at_us=150.0),),
        ),
        WorkloadSpec(
            "kvstore_supervised",
            seed=19,
            until_us=20_000_000.0,
            roles=_kv_roles()
            + (
                WorkloadRole(
                    "supervisor", _make_kv_supervisor, boot_at_us=60.0
                ),
                WorkloadRole("client", KvClient, boot_at_us=150.0),
            ),
            supervised=("replica0", "replica1", "replica2"),
        ),
        WorkloadSpec(
            "signal",
            seed=16,
            until_us=60_000_000.0,
            roles=(
                # Blocking B_SIGNALs against BENCH_PATTERN — §5.5.
                WorkloadRole("server", AcceptingServer),
                WorkloadRole(
                    "client",
                    lambda: BlockingSignaler(total=6),
                    boot_at_us=100.0,
                ),
            ),
        ),
    )
}


def _noarb_philosopher(index: int, count: int = 5):
    return lambda: Philosopher(
        left_mid=(index - 1) % count,
        meals_target=3,
        grab_own_first=True,
    )


#: Extra workloads for ``python -m repro causal`` only.  They are *not*
#: part of ``WORKLOADS`` — the chaos matrix, check-trace and the tier-1
#: gates stay the named set above — because these exist to
#: demonstrate pathologies: ``philosophers_noarb`` runs the §4.4.3 ring
#: with the hold-and-wait acquisition order and no deadlock detector,
#: so it *must* end with a SODA013 wait-for cycle.
CAUSAL_WORKLOADS: Dict[str, WorkloadSpec] = {
    **WORKLOADS,
    "philosophers_noarb": WorkloadSpec(
        "philosophers_noarb",
        seed=21,
        until_us=400_000.0,
        roles=tuple(
            WorkloadRole(f"phil{i}", _noarb_philosopher(i))
            for i in range(5)
        ),
    ),
}


def get_spec(name: str) -> WorkloadSpec:
    try:
        return CAUSAL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(CAUSAL_WORKLOADS))}"
        ) from None


def build_workload(
    name: str,
    seed: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    config: Optional[KernelConfig] = None,
    max_trace_records: Optional[int] = None,
    keep_trace: bool = True,
    durable: bool = True,
) -> BuiltWorkload:
    """Construct a workload network without running it.

    ``seed``/``faults``/``config`` override the spec defaults so the
    chaos harness can sweep seeds and overlay fault plans;
    ``keep_trace=False`` runs the tracer in counters-only fast mode
    (no record retention — the engine benchmark uses it to price
    tracing itself).  ``durable=False`` builds disk-bearing roles
    diskless — the pre-durability amnesia behaviour, kept reachable so
    tests can demonstrate exactly what the WAL buys.
    """
    spec = get_spec(name)
    net = Network(
        seed=spec.seed if seed is None else seed,
        faults=faults,
        config=config,
        max_trace_records=max_trace_records,
        keep_trace=keep_trace,
    )
    for role in spec.roles:
        node = net.add_node(
            program=role.factory(),
            name=role.name,
            boot_at_us=role.boot_at_us,
        )
        if durable and role.disk_factory is not None:
            disk = role.disk_factory()
            media = getattr(disk, "inner", disk)
            if isinstance(media, SimDisk):
                media.ledger = net.ledger
            node.disk = disk
    return BuiltWorkload(spec=spec, net=net)


def run_workload(name: str) -> Network:
    """Build and run a workload exactly as the CLI always has."""
    return build_workload(name).run()
