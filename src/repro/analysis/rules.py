"""The sodalint rule set and registry.

Each rule is a class with a ``rule_id``, a one-line ``summary``, and a
``check(model)`` generator yielding :class:`Diagnostic` objects.  Rules
register themselves with :func:`register_rule`; extensions add their own
rules the same way:

    from repro.analysis import LintRule, register_rule

    @register_rule
    class MulticastFanoutRule(LintRule):
        rule_id = "EXT101"
        summary = "multicast send with no member check"
        def check(self, model):
            ...

The built-in rules encode the conventions of PAPER.md §3 that the kernel
cannot enforce at runtime; see docs/ANALYSIS.md for the full table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Type

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.model import (
    ModuleModel,
    ProgramClass,
    api_call_name,
    attribute_chain,
    normalized_chain,
)

#: SODAL primitives that suspend the *task* (or end the handler early via
#: the saved-PC maneuver, §4.1.1) and therefore do not belong in handler
#: context: a handler must run to ENDHANDLER without blocking (§3.2).
TASK_ONLY_BLOCKING = frozenset(
    {
        "b_request",
        "b_signal",
        "b_put",
        "b_get",
        "b_exchange",
        "discover",
        "discover_all",
        "boot_node",
        "boot_start",
        "poll",
        "serve_forever",
        "wait_completion",
        "await_completion",
        "sleep",
    }
)

#: Non-blocking REQUEST variants (§4.1.1); they complete through the
#: handler, so issuing one requires a completion path somewhere.
NONBLOCKING_REQUESTS = frozenset(
    {"request", "signal", "put", "get", "exchange"}
)

#: SodalApi methods that are generators: calling one without ``yield
#: from`` silently does nothing (the generator is never driven).
GENERATOR_API = frozenset(
    {
        "advertise",
        "unadvertise",
        "getuniqueid",
        "open",
        "close",
        "die",
        "request",
        "signal",
        "put",
        "get",
        "exchange",
        "accept",
        "accept_signal",
        "accept_put",
        "accept_get",
        "accept_exchange",
        "accept_current",
        "accept_current_signal",
        "accept_current_put",
        "accept_current_get",
        "accept_current_exchange",
        "reject",
        "cancel",
        "b_request",
        "b_signal",
        "b_put",
        "b_get",
        "b_exchange",
        "discover",
        "discover_all",
        "boot_node",
        "boot_start",
        "enqueue",
        "dequeue",
        "poll",
        "serve_forever",
        "wait_completion",
        "await_completion",
    }
)

#: Calls returning a SimFuture that is useless unless kept and awaited.
FUTURE_API = frozenset({"watch_completion", "new_future"})

#: Kernel handler-dispatch entry points; client code calling these can
#: re-enter the handler and nest invocations the kernel forbids (§3.2).
HANDLER_DISPATCH = frozenset({"run_handler", "poll_handler"})


_REGISTRY: Dict[str, "LintRule"] = {}


def register_rule(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator: add a rule to the global registry.

    Re-registering a rule_id replaces the previous rule (extensions may
    override a built-in with a stricter variant).
    """
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    _REGISTRY[instance.rule_id] = instance
    return cls


def get_rule(rule_id: str) -> "LintRule":
    return _REGISTRY[rule_id]


def all_rules() -> List["LintRule"]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


class LintRule:
    """Base class for sodalint rules."""

    rule_id: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, model: ModuleModel, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=self.rule_id,
            message=message,
            file=model.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


def _walk_calls(fn: ast.FunctionDef) -> Iterator[ast.Call]:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class HandlerBlockingRule(LintRule):
    """SODA001: blocking task-level primitive in handler context.

    The handler is client code invoked by kernel interrupt; it must not
    block (§3.2).  A B_* request from the handler triggers the saved-PC
    maneuver — the rest of the handler silently becomes task-level code
    (§4.1.1) — and polling loops wedge the client, so both are flagged.
    """

    rule_id = "SODA001"
    summary = "blocking primitive called from handler context"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls in model.program_classes:
            for section in cls.handler_sections():
                for call in _walk_calls(section):
                    name = api_call_name(call)
                    if name in TASK_ONLY_BLOCKING:
                        yield self.diagnostic(
                            model,
                            call,
                            f"{cls.name}.{section.name} calls blocking "
                            f"api.{name}(); handlers must run to "
                            f"ENDHANDLER without suspending the task",
                        )
                        continue
                    # sim.sleep / api.sim.sleep from handler context.
                    chain = (
                        normalized_chain(call.func)
                        if isinstance(call.func, ast.Attribute)
                        else None
                    )
                    if chain and chain[-1] == "sleep" and "sim" in chain[:-1]:
                        yield self.diagnostic(
                            model,
                            call,
                            f"{cls.name}.{section.name} sleeps on the "
                            f"simulator clock inside a handler",
                        )


@register_rule
class ReservedAdvertiseRule(LintRule):
    """SODA002: client ADVERTISEs a reserved pattern.

    BOOT/LOAD/KILL/SYSTEM patterns are interpreted by the kernel (§3.5);
    a client advertising one shadows the kernel's own protocol.
    """

    rule_id = "SODA002"
    summary = "ADVERTISE of a reserved pattern"

    def _is_reserved_expr(self, model: ModuleModel, expr: ast.AST) -> bool:
        chain = attribute_chain(expr)
        if chain is not None:
            name = chain[-1]
            return (
                name in model.reserved_aliases
                or name in model.reserved_locals
                or name
                in {"DEFAULT_KILL_PATTERN", "SYSTEM_PATTERN", "KERNEL_RMR_PATTERN"}
            )
        if isinstance(expr, ast.Call):
            callee = attribute_chain(expr.func)
            if callee and (
                callee[-1] in {"make_reserved_pattern", "boot_pattern_for"}
                or callee[-1] in model.reserved_factories
            ):
                return True
        return False

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls, node in model.walk_program_code():
            if not isinstance(node, ast.Call):
                continue
            if api_call_name(node) != "advertise" or not node.args:
                continue
            if self._is_reserved_expr(model, node.args[0]):
                yield self.diagnostic(
                    model,
                    node,
                    f"{cls.name} advertises a reserved pattern; "
                    f"BOOT/LOAD/KILL/SYSTEM patterns belong to the kernel "
                    f"(use getuniqueid or a well-known client pattern)",
                )


@register_rule
class OrphanRequestRule(LintRule):
    """SODA003: non-blocking REQUEST with no completion path.

    A REQUEST completes through a handler interrupt (§3.7.5).  A program
    that issues one but neither inspects completions in its handler nor
    awaits/cancels the TID leaks the request slot until MAXREQUESTS
    starves it.
    """

    rule_id = "SODA003"
    summary = "REQUEST issued with no reachable completion handling"

    #: A class "handles completions" if any of these appear in its body.
    _COMPLETION_CALLS = frozenset(
        {"await_completion", "watch_completion", "wait_completion", "cancel"}
    )
    _COMPLETION_MARKS = frozenset(
        {"is_completion", "REQUEST_COMPLETE", "status", "reason"}
    )

    def _handles_completions(self, cls: ProgramClass) -> bool:
        for node in ast.walk(cls.node):
            if isinstance(node, ast.Call):
                name = api_call_name(node)
                if name in self._COMPLETION_CALLS:
                    return True
            elif isinstance(node, ast.Attribute):
                if node.attr in self._COMPLETION_MARKS:
                    return True
        return False

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls in model.program_classes:
            requests = [
                call
                for fn in cls.methods.values()
                for call in _walk_calls(fn)
                if api_call_name(call) in NONBLOCKING_REQUESTS
            ]
            if not requests or self._handles_completions(cls):
                continue
            for call in requests:
                name = api_call_name(call)
                yield self.diagnostic(
                    model,
                    call,
                    f"{cls.name} issues api.{name}() but never handles "
                    f"completions (no is_completion/status check in the "
                    f"handler and no await/watch/cancel of the TID)",
                )


@register_rule
class HandlerNestingRule(LintRule):
    """SODA004: client code that can nest handler invocations.

    Handler invocations never nest (§3.2): the kernel owns dispatch.
    Calling the handler method directly, or poking the kernel's
    dispatch machinery, re-enters the handler under the kernel's feet.
    """

    rule_id = "SODA004"
    summary = "handler invocation that can nest"

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls, node in model.walk_program_code():
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain:
                continue
            if chain[0] == "self" and chain[-1] in ("handler", "initialization"):
                yield self.diagnostic(
                    model,
                    node,
                    f"{cls.name} invokes self.{chain[-1]}() directly; "
                    f"handler invocations are dispatched by the kernel "
                    f"and must never nest",
                )
            elif chain[-1] in HANDLER_DISPATCH and len(chain) > 1:
                yield self.diagnostic(
                    model,
                    node,
                    f"{cls.name} calls {'.'.join(chain)}(); client code "
                    f"must not drive the kernel's handler dispatch",
                )


@register_rule
class DiscardedResultRule(LintRule):
    """SODA005: discarded generator or SimFuture result.

    Every SODAL primitive is a generator — ``api.advertise(p)`` without
    ``yield from`` builds a generator object and throws it away, doing
    nothing.  Likewise a bare ``yield`` of a primitive hands the
    generator to the scheduler as if it were a time cost, and a
    discarded ``watch_completion``/``new_future`` future can never be
    awaited.
    """

    rule_id = "SODA005"
    summary = "unawaited generator or SimFuture result"

    def _offender(self, call: ast.Call) -> str:
        name = api_call_name(call)
        if name in GENERATOR_API:
            return (
                f"api.{name}() is a generator; invoking it without "
                f"'yield from' does nothing"
            )
        chain = (
            normalized_chain(call.func)
            if isinstance(call.func, ast.Attribute)
            else None
        )
        if chain and chain[-1] in FUTURE_API:
            return (
                f"{'.'.join(chain)}() returns a SimFuture that is "
                f"discarded and can never be awaited"
            )
        return ""

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls, node in model.walk_program_code():
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                message = self._offender(node.value)
                if message:
                    yield self.diagnostic(
                        model, node, f"{cls.name}: {message}"
                    )
            elif (
                isinstance(node, ast.Yield)
                and node.value is not None
                and isinstance(node.value, ast.Call)
            ):
                name = api_call_name(node.value)
                if name in GENERATOR_API:
                    yield self.diagnostic(
                        model,
                        node,
                        f"{cls.name}: 'yield api.{name}(...)' yields the "
                        f"generator object itself; use 'yield from'",
                    )


@register_rule
class KernelMutationRule(LintRule):
    """SODA006: client code mutating kernel-owned state.

    The kernel owns handler state, the pattern table, connections, and
    request records (§3.3).  Clients observe them read-only through the
    api; writing them bypasses every protocol invariant.
    """

    rule_id = "SODA006"
    summary = "direct mutation of kernel-owned state from client code"

    @staticmethod
    def _kernel_chain(chain: List[str]) -> bool:
        return "kernel" in chain[:-1] and chain[0] in ("api", "kernel")

    def check(self, model: ModuleModel) -> Iterator[Diagnostic]:
        for cls, node in model.walk_program_code():
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                chain = normalized_chain(target)
                if chain and (
                    self._kernel_chain(chain)
                    or chain[:1] == ["kernel"]
                    and len(chain) > 1
                ):
                    yield self.diagnostic(
                        model,
                        node,
                        f"{cls.name} assigns {'.'.join(chain)}; kernel "
                        f"state is owned by the kernel (§3.3) and must "
                        f"only change through primitives",
                    )
            if isinstance(node, ast.Call):
                chain = (
                    normalized_chain(node.func)
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if (
                    chain
                    and chain[0] == "api"
                    and any(part.startswith("_") for part in chain[1:])
                ):
                    yield self.diagnostic(
                        model,
                        node,
                        f"{cls.name} calls private "
                        f"{'.'.join(chain)}(); internal kernel/runtime "
                        f"entry points are not part of the client API",
                    )
