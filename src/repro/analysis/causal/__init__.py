"""Causal analysis engine over kernel trace records (PR 6).

Four cooperating pieces, all pure functions of a trace:

* :mod:`repro.analysis.causal.clocks` — vector clocks / happens-before;
* :mod:`repro.analysis.causal.races` — SODA010-SODA012 causal race
  rules with shrunk witness pairs;
* :mod:`repro.analysis.causal.waitfor` — SODA013 wait-for-graph
  deadlock detection from open transaction spans;
* :mod:`repro.analysis.causal.streaming` — the O(open-state) streaming
  rewrite of the batch invariant checker (a live Tracer sink).

See docs/ANALYSIS.md ("Causal analysis") for the clock model and the
rule table.
"""

from repro.analysis.causal.clocks import CausalOrder, build_causal_order
from repro.analysis.causal.races import CausalDiagnostic, find_races
from repro.analysis.causal.streaming import IncrementalChecker, check_stream
from repro.analysis.causal.waitfor import (
    WaitForGraph,
    build_wait_graph,
    detect_deadlocks,
)

__all__ = [
    "CausalDiagnostic",
    "CausalOrder",
    "IncrementalChecker",
    "WaitForGraph",
    "build_causal_order",
    "build_wait_graph",
    "check_stream",
    "detect_deadlocks",
    "find_races",
]
