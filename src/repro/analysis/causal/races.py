"""Causal race rules SODA010-SODA012 (docs/ANALYSIS.md, "Causal
analysis").

All three rules are *harm* rules, not concurrency detectors: SODA's
kernel is full of benign concurrency (an ACCEPT legitimately races a
CANCEL every time a requester withdraws), so flagging incomparability
alone would drown real findings.  Each rule fires only when the trace
shows an **effect without its cause** or **state crossing an
incarnation boundary**:

* **SODA010 — causality inversion.**  A transaction effect (delivery at
  the server, COMPLETED at the requester) whose cause (the REQUEST
  issue, the delivery) is *not* in its causal past.  On a healthy trace
  the REQUEST's wire edges put the cause strictly before the effect.
* **SODA011 — ACCEPT/reset race.**  A REQUEST completes COMPLETED in a
  *different requester incarnation* than the one that issued it: a
  stale ACCEPT crossed the requester's reset and resurrected a dead
  transaction.  The kernel's tid watermark (§3.6.1) exists precisely to
  make this impossible — the rule is the trace-side proof.
* **SODA012 — shared-state write across a reset.**  Kernel shared cells
  (delivered-request records, connection send state, advertisement-table
  entries) are wiped at incarnation boundaries; a write that continues
  a pre-boundary cell means a stale cause (an in-flight ACCEPT, a timer
  of the dead incarnation) raced the reset.

Every diagnostic carries a shrunk witness pair: the two trace records
whose (mis)ordering proves the violation, annotated with their clock
relation when a :class:`~repro.analysis.causal.clocks.CausalOrder` is
supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.causal.clocks import CausalOrder
from repro.sim.tracing import TraceRecord

#: Connection-record categories that prove *send-direction* activity —
#: each requires an outstanding message, which requires a prior
#: ``kernel.tx`` (a rx-side record like ``conn.resync`` does not).
_CONN_SEND_CATEGORIES = frozenset(
    {
        "conn.retransmit",
        "conn.busy_retry",
        "conn.acked",
        "conn.peer_dead",
        "conn.seq_swap",
        "conn.spurious_retransmit",
    }
)

#: Boundary records that wipe a node's delivered cells and pattern table.
_RESET_CATEGORIES = frozenset({"kernel.client_reset"})


@dataclass(frozen=True)
class CausalDiagnostic:
    """One causal rule violation, anchored to a witness pair."""

    rule_id: str
    time: float
    mid: Optional[int]
    message: str
    #: Shrunk witness: formatted references to the (at most two) trace
    #: records whose ordering proves the violation.
    witness: Tuple[str, ...] = ()

    def format(self) -> str:
        where = f"mid={self.mid}" if self.mid is not None else "-"
        text = (
            f"t={self.time / 1000.0:.3f}ms {self.rule_id} [{where}] "
            f"{self.message}"
        )
        if self.witness:
            text += " (witness: " + " | ".join(self.witness) + ")"
        return text

    def __str__(self) -> str:
        return self.format()


def _witness(
    order: Optional[CausalOrder],
    records: Sequence[TraceRecord],
    i: int,
    j: int,
) -> Tuple[str, ...]:
    """Format the witness pair (i, j), clock-annotated when possible."""
    if order is not None:
        pair = [order.describe(i), order.describe(j)]
        if order.concurrent(i, j):
            pair.append("clock-concurrent")
        elif order.happens_before(j, i):
            pair.append("clock-inverted")
        return tuple(pair)
    refs = []
    for idx in (i, j):
        rec = records[idx]
        refs.append(f"#{idx} t={rec.time / 1000.0:.3f}ms {rec.category}")
    return tuple(refs)


@dataclass
class _Txn:
    """Per-transaction record indices, keyed <requester mid, tid>."""

    request: Optional[int] = None
    delivered: Optional[int] = None
    complete: Optional[int] = None
    complete_status: Optional[str] = None


def find_races(
    records: Sequence[TraceRecord], order: Optional[CausalOrder] = None
) -> List[CausalDiagnostic]:
    """Run SODA010-SODA012 over one trace; deterministic order."""
    txns: Dict[Tuple[int, int], _Txn] = {}
    #: per mid: indices of reset boundaries, in trace order.
    resets: Dict[int, List[int]] = {}
    #: per mid: indices of full-kernel crashes (connections wiped too).
    crashes: Dict[int, List[int]] = {}
    #: requester epoch at request/complete time (SODA011).
    req_epoch: Dict[Tuple[int, int], int] = {}
    done_epoch: Dict[Tuple[int, int], int] = {}
    epochs: Dict[int, int] = {}
    #: delivered cell -> (last write idx, last state).
    delivered_cells: Dict[Tuple[int, int, int], Tuple[int, str]] = {}
    #: last kernel.tx index per (mid, dst).
    last_tx: Dict[Tuple[int, int], int] = {}
    #: advertisement table: (mid, pattern) -> epoch of last advertise.
    adtable: Dict[Tuple[int, int], int] = {}

    diagnostics: List[CausalDiagnostic] = []

    def current_epoch(mid: int) -> int:
        return epochs.get(mid, 0)

    for idx, rec in enumerate(records):
        category = rec.category
        mid = rec.get("mid")
        if category == "kernel.request":
            txn = txns.setdefault((mid, rec["tid"]), _Txn())
            if txn.request is None:
                txn.request = idx
            req_epoch[(mid, rec["tid"])] = current_epoch(mid)
        elif category == "kernel.delivered_state":
            key = (rec["mid"], rec["src"], rec["tid"])
            txn = txns.setdefault((rec["src"], rec["tid"]), _Txn())
            state = rec["state"]
            if state == "delivered" and txn.delivered is None:
                txn.delivered = idx
            prev = delivered_cells.get(key)
            if prev is not None and state != "delivered":
                prev_idx, _prev_state = prev
                boundary = _boundary_between(
                    resets.get(rec["mid"], ()), prev_idx, idx
                )
                if boundary is not None:
                    diagnostics.append(
                        CausalDiagnostic(
                            "SODA012",
                            rec.time,
                            rec["mid"],
                            f"delivered cell <{key[1]},{key[2]}> advanced "
                            f"to '{state}' across mid {rec['mid']}'s "
                            f"incarnation boundary — the write's cause "
                            f"predates the reset that wiped the cell",
                            witness=_witness(order, records, boundary, idx),
                        )
                    )
            delivered_cells[key] = (idx, state)
        elif category == "kernel.complete":
            txn = txns.setdefault((mid, rec["tid"]), _Txn())
            if txn.complete is None:
                txn.complete = idx
                txn.complete_status = rec.get("status")
            done_epoch[(mid, rec["tid"])] = current_epoch(mid)
        elif category == "kernel.client_reset":
            epochs[mid] = rec.get("epoch", current_epoch(mid) + 1)
            resets.setdefault(mid, []).append(idx)
        elif category == "kernel.crash":
            crashes.setdefault(mid, []).append(idx)
        elif category == "kernel.tx":
            dst = rec.get("dst")
            if dst is not None and dst >= 0:
                last_tx[(mid, dst)] = idx
        elif category in _CONN_SEND_CATEGORIES:
            peer = rec.get("peer")
            if peer is None:
                continue
            boundary = _latest_before(crashes.get(mid, ()), idx)
            if boundary is not None:
                tx_idx = last_tx.get((mid, peer))
                if tx_idx is None or tx_idx < boundary:
                    diagnostics.append(
                        CausalDiagnostic(
                            "SODA012",
                            rec.time,
                            mid,
                            f"connection record {mid}->{peer} shows "
                            f"send-direction activity ({category}) after "
                            f"mid {mid}'s power failure with no fresh "
                            f"transmission — state of the dead "
                            f"incarnation raced the crash",
                            witness=_witness(order, records, boundary, idx),
                        )
                    )
                    # One finding per resurrected connection per crash.
                    last_tx[(mid, peer)] = idx
        elif category == "kernel.advertise":
            adtable[(mid, rec["pattern"])] = current_epoch(mid)
        elif category == "kernel.unadvertise":
            owner = adtable.get((mid, rec["pattern"]))
            if owner is not None and owner != current_epoch(mid):
                boundary = _latest_before(resets.get(mid, ()), idx)
                if boundary is not None:
                    diagnostics.append(
                        CausalDiagnostic(
                            "SODA012",
                            rec.time,
                            mid,
                            f"advertisement-table entry for pattern "
                            f"{rec['pattern']:#x} unadvertised by "
                            f"incarnation e{current_epoch(mid)} but "
                            f"advertised by e{owner} — the reset wiped "
                            f"the table between the two writes",
                            witness=_witness(order, records, boundary, idx),
                        )
                    )
                adtable[(mid, rec["pattern"])] = current_epoch(mid)

    # -- SODA010 / SODA011 per transaction, deterministic key order ------
    for (req_mid, tid), txn in sorted(txns.items()):
        if order is not None and txn.delivered is not None:
            if txn.request is not None and not order.happens_before(
                txn.request, txn.delivered
            ):
                rec = records[txn.delivered]
                diagnostics.append(
                    CausalDiagnostic(
                        "SODA010",
                        rec.time,
                        rec.get("mid"),
                        f"REQUEST <{req_mid},{tid}> was delivered at the "
                        f"server without the issuing REQUEST in its "
                        f"causal past — the delivery cannot have been "
                        f"caused by the request it claims",
                        witness=_witness(
                            order, records, txn.request, txn.delivered
                        ),
                    )
                )
            if (
                txn.complete is not None
                and txn.complete_status == "completed"
                and not order.happens_before(txn.delivered, txn.complete)
            ):
                rec = records[txn.complete]
                diagnostics.append(
                    CausalDiagnostic(
                        "SODA010",
                        rec.time,
                        rec.get("mid"),
                        f"REQUEST <{req_mid},{tid}> completed COMPLETED "
                        f"without its delivery in the completion's "
                        f"causal past — the reply arrived before (or "
                        f"concurrently with) its own cause",
                        witness=_witness(
                            order, records, txn.delivered, txn.complete
                        ),
                    )
                )
        issue = req_epoch.get((req_mid, tid))
        finish = done_epoch.get((req_mid, tid))
        if (
            issue is not None
            and finish is not None
            and finish != issue
            and txn.complete_status == "completed"
        ):
            rec = records[txn.complete]
            boundary = _boundary_between(
                resets.get(req_mid, ()), txn.request or 0, txn.complete
            )
            witness = (
                _witness(order, records, boundary, txn.complete)
                if boundary is not None
                else _witness(
                    order, records, txn.request or txn.complete, txn.complete
                )
            )
            diagnostics.append(
                CausalDiagnostic(
                    "SODA011",
                    rec.time,
                    req_mid,
                    f"REQUEST <{req_mid},{tid}> was issued by incarnation "
                    f"e{issue} but completed COMPLETED in e{finish} — a "
                    f"stale ACCEPT crossed the requester's reset and "
                    f"resurrected a dead transaction (§3.6.1 tid "
                    f"watermark violated)",
                    witness=witness,
                )
            )

    diagnostics.sort(key=lambda d: (d.time, d.rule_id, d.mid or -1, d.message))
    return diagnostics


def _boundary_between(
    boundaries: Sequence[int], start: int, end: int
) -> Optional[int]:
    """The first boundary index strictly between ``start`` and ``end``."""
    for idx in boundaries:
        if start < idx < end:
            return idx
    return None


def _latest_before(boundaries: Sequence[int], end: int) -> Optional[int]:
    """The latest boundary index strictly before ``end``."""
    found: Optional[int] = None
    for idx in boundaries:
        if idx < end:
            found = idx
        else:
            break
    return found
