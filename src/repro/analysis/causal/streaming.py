"""Streaming invariant checking with O(open-transactions) state.

:class:`~repro.analysis.invariants.InvariantChecker` replays a retained
trace after the run — simple, but its memory is the whole trace plus a
``_PidState`` for every sequenced message ever sent, so a soak run must
retain millions of records just to be checked.  This module re-derives
the *same verdicts* from a single forward pass that retires state as
transactions close:

* a message's send-direction state (``_PidState``) is retired the moment
  a *new* message starts on its connection — the alternating-bit
  protocol guarantees the old one will never transmit again, so its
  INV-DELTAT verdict is already decided (``retry_window_bound_us`` is a
  pure function of the policy knobs, not of run state, so evaluating at
  retirement equals evaluating at end of run); only the verdicts of the
  rare *dirty* messages are kept, not the state of every clean one;
* a delivered-request cell is retired on reaching a terminal state
  (DONE/CANCELLED) — the kernel deletes its record then, so no further
  transition can reference it;
* BUSY NACKs, peer-death, sequence swaps, crashes and resets clear
  retained state exactly where the batch checker clears (or later
  skips) it.

Peak retained state is therefore proportional to *open* work — live
messages, undecided delivered requests, pending verdicts — not to trace
length.  ``python -m repro causal-bench`` measures the ratio.

**Equivalence contract.**  On any trace a SODA kernel can emit, verdicts
are identical to the batch checker's, list order included
(``tests/test_chaos.py`` proves it across the full chaos matrix, and
``tests/analysis/test_streaming_checker.py`` on the gate cells and a
soak).  Hand-built traces that violate kernel guarantees — a retired
message transmitting again, a delivered cell written after its terminal
state — are outside the contract: the batch checker still has the
retired state to compare against and the streaming checker, by design,
does not.  Feed pathological traces to the batch checker.

The checker is also a live :class:`~repro.sim.tracing.Tracer` sink
(:meth:`IncrementalChecker.install`): attach it before a run and the
trace need not be retained at all (``keep_records=False``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.invariants import (
    _TERMINAL,
    _TRANSITIONS,
    InvariantChecker,
    InvariantViolation,
    _PidState,
    _SendState,
)
from repro.sim.tracing import CostLedger, TraceRecord
from repro.transport.retransmit import RetransmitPolicy


class _ConnState:
    """Send-direction state of one (sender, peer) pair — at most one
    live message, unlike the batch checker's ever-growing pid map."""

    __slots__ = ("last_new_seq", "resync_ok", "live_pid", "live", "busy_hint")

    def __init__(self) -> None:
        self.last_new_seq: Optional[int] = None
        self.resync_ok: bool = False
        self.live_pid: Optional[int] = None
        self.live: Optional[_PidState] = None
        #: SODA007: earliest allowed next transmission of the live pid.
        self.busy_hint: Optional[float] = None


class IncrementalChecker:
    """One-pass invariant checker; mirrors ``InvariantChecker`` verdicts.

    Feed records with :meth:`feed` (or attach via :meth:`install`), then
    call :meth:`finish` once for the end-of-trace verdicts.  Violations
    detectable mid-stream (INV-SEQ, INV-HANDLER, illegal transitions,
    SODA007) are appended to :attr:`violations` as they happen.
    """

    def __init__(
        self,
        network=None,
        strict_completion: bool = True,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        #: Composed batch checker: reused for policy lookup, INV-DELTAT
        #: evaluation and the ledger audit, so the two implementations
        #: cannot drift apart on shared logic.
        self._batch = InvariantChecker(
            network=network, strict_completion=strict_completion, policy=policy
        )
        self.strict_completion = strict_completion
        self.violations: List[InvariantViolation] = []
        self._conns: Dict[Tuple[int, int], _ConnState] = {}
        #: Verdicts of retired dirty messages: (mid, dst) -> pid -> violation.
        self._deltat_pending: Dict[
            Tuple[int, int], Dict[int, InvariantViolation]
        ] = {}
        #: Open (non-terminal) delivered-request cells only.
        self._delivered: Dict[Tuple[int, int, int], str] = {}
        self._handler_depth: Dict[int, int] = {}
        self._end_time = 0.0
        self._finished = False
        #: Streaming stats (exported via repro.obs analysis.* counters).
        self.records_checked = 0
        self.peak_open_state = 0

    # -- state accounting --------------------------------------------------

    def open_state(self) -> int:
        """Retained stateful entries right now: live messages, pending
        verdicts, open delivered cells."""
        return (
            sum(1 for conn in self._conns.values() if conn.live is not None)
            + sum(len(pids) for pids in self._deltat_pending.values())
            + len(self._delivered)
        )

    def _note_state(self) -> None:
        open_now = self.open_state()
        if open_now > self.peak_open_state:
            self.peak_open_state = open_now

    # -- streaming ---------------------------------------------------------

    def install(self, net) -> "IncrementalChecker":
        """Attach as a live sink on ``net``'s tracer; returns self."""
        net.sim.trace.add_sink(self.feed)
        return self

    def feed(self, rec: TraceRecord) -> None:
        """Consume one trace record."""
        if self._finished:
            raise RuntimeError("IncrementalChecker already finished")
        self.records_checked += 1
        if rec.time > self._end_time:
            self._end_time = rec.time
        category = rec.category
        if category == "kernel.tx":
            self._on_tx(rec)
        elif category == "kernel.rx":
            if rec.get("nack") == "busy":
                self._on_busy(rec)
        elif category == "conn.peer_dead":
            conn = self._conns.get((rec["mid"], rec["peer"]))
            if conn is not None:
                conn.resync_ok = True
                conn.busy_hint = None
        elif category == "conn.seq_swap":
            conn = self._conns.get((rec["mid"], rec["peer"]))
            if conn is not None:
                parked = rec["parked_pid"]
                if conn.live_pid == parked:
                    conn.live_pid = None
                    conn.live = None
                    conn.busy_hint = None
                self._deltat_pending.get(
                    (rec["mid"], rec["peer"]), {}
                ).pop(parked, None)
                conn.resync_ok = True
        elif category == "kernel.interrupt":
            mid = rec["mid"]
            depth = self._handler_depth.get(mid, 0) + 1
            self._handler_depth[mid] = depth
            if depth > 1:
                self.violations.append(
                    InvariantViolation(
                        "INV-HANDLER",
                        rec.time,
                        mid,
                        f"handler invoked while a previous invocation "
                        f"is still open (depth {depth}); handlers "
                        f"must never nest",
                    )
                )
        elif category == "kernel.endhandler":
            mid = rec["mid"]
            self._handler_depth[mid] = max(
                0, self._handler_depth.get(mid, 0) - 1
            )
        elif category == "kernel.delivered_state":
            self._on_delivered(rec)
        elif category in ("kernel.crash", "kernel.client_reset", "kernel.die"):
            mid = rec["mid"]
            self._handler_depth[mid] = 0
            for key in [k for k in self._delivered if k[0] == mid]:
                del self._delivered[key]
            if category == "kernel.crash":
                for key in [k for k in self._conns if k[0] == mid]:
                    del self._conns[key]
                for key in [k for k in self._deltat_pending if k[0] == mid]:
                    del self._deltat_pending[key]
        self._note_state()

    # -- per-category handlers ---------------------------------------------

    def _on_busy(self, rec: TraceRecord) -> None:
        key = (rec["mid"], rec["src"])
        conn = self._conns.get(key)
        if conn is None:
            return
        conn.resync_ok = True
        # The batch checker marks *every* message of this connection
        # busy, which at finalize skips their INV-DELTAT verdicts —
        # including verdicts of already-retired messages.  Withdraw them.
        self._deltat_pending.pop(key, None)
        if conn.live is not None:
            conn.live.busy = True
            hint = rec.get("hint")
            if (
                hint is not None
                and conn.live.tid is not None
                and conn.live.tid == rec.get("tid")
            ):
                conn.busy_hint = rec.time + hint

    def _on_tx(self, rec: TraceRecord) -> None:
        seq = rec.get("seq")
        pid = rec.get("pid")
        if seq is None or pid is None:
            return  # unsequenced traffic (acks, probes, discover, ...)
        mid, dst = rec["mid"], rec["dst"]
        if seq not in (0, 1):
            self.violations.append(
                InvariantViolation(
                    "INV-SEQ", rec.time, mid,
                    f"sequence bit {seq!r} is not alternating-bit",
                )
            )
            return
        conn = self._conns.setdefault((mid, dst), _ConnState())
        if conn.live_pid == pid:
            ps = conn.live
            assert ps is not None
            if seq != ps.seq:
                self.violations.append(
                    InvariantViolation(
                        "INV-SEQ",
                        rec.time,
                        mid,
                        f"retransmission of pkt#{pid} to {dst} changed "
                        f"its sequence bit {ps.seq} -> {seq}",
                    )
                )
            earliest = conn.busy_hint
            conn.busy_hint = None
            if earliest is not None and rec.time < earliest - 1.0:
                self.violations.append(
                    InvariantViolation(
                        "SODA007",
                        rec.time,
                        mid,
                        f"BUSY retry of pkt#{pid} to {dst} sent "
                        f"{(earliest - rec.time)/1000.0:.1f}ms earlier "
                        f"than the retry hint allowed; clients must "
                        f"honor the decaying-rate hint (§5.2.3)",
                    )
                )
            ps.count += 1
            ps.last_us = rec.time
            return
        if (
            conn.last_new_seq is not None
            and not conn.resync_ok
            and seq != 1 - conn.last_new_seq
        ):
            self.violations.append(
                InvariantViolation(
                    "INV-SEQ",
                    rec.time,
                    mid,
                    f"new message pkt#{pid} to {dst} reused sequence bit "
                    f"{seq} (previous message was not acknowledged with "
                    f"an alternation)",
                )
            )
        # A new message on this connection retires the previous one: the
        # alternating-bit protocol guarantees it never transmits again,
        # so its INV-DELTAT verdict is final — keep it only if guilty.
        self._retire_live(mid, dst, conn)
        conn.last_new_seq = seq
        conn.resync_ok = False
        conn.live_pid = pid
        conn.live = _PidState(
            seq=seq,
            first_us=rec.time,
            last_us=rec.time,
            data_bytes=rec.get("bytes", 0) or 0,
            tid=rec.get("tid"),
        )
        conn.busy_hint = None
        self._deltat_pending.get((mid, dst), {}).pop(pid, None)

    def _retire_live(self, mid: int, dst: int, conn: _ConnState) -> None:
        if conn.live is None or conn.live_pid is None:
            return
        verdict = self._deltat_verdict(mid, dst, conn.live_pid, conn.live)
        if verdict is not None:
            self._deltat_pending.setdefault((mid, dst), {})[
                conn.live_pid
            ] = verdict
        conn.live_pid = None
        conn.live = None
        conn.busy_hint = None

    def _deltat_verdict(
        self, mid: int, dst: int, pid: int, ps: _PidState
    ) -> Optional[InvariantViolation]:
        """Exactly ``InvariantChecker._finalize_pids`` for one message."""
        sink: List[InvariantViolation] = []
        self._batch._finalize_pids(
            {(mid, dst): _single_pid_state(pid, ps)}, sink
        )
        return sink[0] if sink else None

    def _on_delivered(self, rec: TraceRecord) -> None:
        key = (rec["mid"], rec["src"], rec["tid"])
        new = rec["state"]
        old = self._delivered.get(key)
        allowed = _TRANSITIONS.get(old, set())
        if new not in allowed:
            self.violations.append(
                InvariantViolation(
                    "INV-COMPLETE",
                    rec.time,
                    rec["mid"],
                    f"request <{key[1]},{key[2]}> made illegal "
                    f"transition {old!r} -> {new!r}",
                )
            )
        if new in _TERMINAL:
            # The kernel deletes the record at DONE/CANCELLED; retire
            # the cell (this is the O(open) win for long soaks).
            self._delivered.pop(key, None)
        else:
            self._delivered[key] = new

    # -- end of trace ------------------------------------------------------

    def finish(
        self, ledger: Optional[CostLedger] = None
    ) -> List[InvariantViolation]:
        """Close the stream; returns the full verdict list (same order
        as ``InvariantChecker.check``)."""
        if self._finished:
            return self.violations
        self._finished = True
        # INV-DELTAT: pending verdicts of retired messages merged with
        # the still-live ones, in the batch order — connections sorted
        # by (mid, dst), messages by pid within each.
        keys = set(self._deltat_pending) | set(self._conns)
        for mid, dst in sorted(keys):
            per_pid: Dict[int, InvariantViolation] = dict(
                self._deltat_pending.get((mid, dst), {})
            )
            conn = self._conns.get((mid, dst))
            if (
                conn is not None
                and conn.live is not None
                and conn.live_pid is not None
            ):
                verdict = self._deltat_verdict(
                    mid, dst, conn.live_pid, conn.live
                )
                if verdict is not None:
                    per_pid[conn.live_pid] = verdict
            for pid in sorted(per_pid):
                self.violations.append(per_pid[pid])
        if self.strict_completion:
            for (mid, src, tid), state in sorted(self._delivered.items()):
                # Only open cells are retained, so every entry is a leak.
                self.violations.append(
                    InvariantViolation(
                        "INV-COMPLETE",
                        self._end_time,
                        mid,
                        f"request <{src},{tid}> left in state "
                        f"'{state}' at end of run (never reached "
                        f"DONE/CANCELLED)",
                    )
                )
        if ledger is not None:
            self._batch._check_ledger(ledger, self._end_time, self.violations)
        return self.violations


def _single_pid_state(pid: int, ps: _PidState) -> _SendState:
    """A one-entry send map shaped for ``_finalize_pids``."""
    state = _SendState()
    state.pids[pid] = ps
    return state


def check_stream(
    records: Iterable[TraceRecord],
    network=None,
    strict_completion: bool = True,
    ledger: Optional[CostLedger] = None,
) -> List[InvariantViolation]:
    """One-shot streaming check of an already-materialized record
    sequence (the drop-in counterpart of ``check_network``)."""
    checker = IncrementalChecker(
        network=network, strict_completion=strict_completion
    )
    for rec in records:
        checker.feed(rec)
    return checker.finish(ledger=ledger)
