"""``python -m repro causal-bench`` — batch vs streaming checker cost.

One long soak (a streaming requester pushing a fixed request count
through an accepting server) is checked twice:

* **batch** — retain every trace record, replay with
  :class:`~repro.analysis.invariants.InvariantChecker` afterwards; its
  working set is the whole trace;
* **streaming** — :class:`IncrementalChecker` attached as a live tracer
  sink; its working set is the open-transaction state only.

The committed ``BENCH_analysis.json`` carries only *deterministic*
numbers (record counts, simulated-time throughput, peak retained
state, verdict agreement) so CI can diff it byte-for-byte; wall-clock
rates are printed to stdout and never serialized.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from repro.analysis.causal.clocks import build_causal_order
from repro.analysis.causal.streaming import IncrementalChecker
from repro.analysis.invariants import InvariantChecker
from repro.bench.workloads import AcceptingServer, StreamingRequester
from repro.core.node import Network

#: Fixed soak shape: enough transactions that open state vs trace
#: length separates by orders of magnitude, small enough for CI.
SOAK_SEED = 29
SOAK_TXNS = 600
SOAK_HORIZON_US = 120_000_000.0


def _build_soak() -> Network:
    net = Network(seed=SOAK_SEED)
    net.add_node(program=AcceptingServer(reply_bytes=8))
    net.add_node(
        program=StreamingRequester(put_bytes=32, get_bytes=8, total=SOAK_TXNS),
        boot_at_us=100.0,
    )
    return net


def run_causal_bench(
    out: Callable[[str], None] = print,
) -> Dict[str, Any]:
    """Run the soak twice; returns the deterministic comparison body."""
    # -- batch: retain the full trace, replay afterwards -----------------
    net = _build_soak()
    net.run(until=SOAK_HORIZON_US)
    records = list(net.sim.trace.records)
    t0 = time.perf_counter()
    batch = InvariantChecker(network=net, strict_completion=True)
    batch_violations = batch.check(net.sim.trace, ledger=net.ledger)
    batch_s = time.perf_counter() - t0
    horizon_us = net.sim.now

    # -- streaming: live sink, no retention needed -----------------------
    live_net = _build_soak()
    checker = IncrementalChecker(network=live_net, strict_completion=True)
    checker.install(live_net)
    t0 = time.perf_counter()
    live_net.run(until=SOAK_HORIZON_US)
    stream_violations = checker.finish(ledger=live_net.ledger)
    stream_s = time.perf_counter() - t0

    order = build_causal_order(records)

    batch_fmt = [v.format() for v in batch_violations]
    stream_fmt = [v.format() for v in stream_violations]
    body: Dict[str, Any] = {
        "soak": {
            "seed": SOAK_SEED,
            "transactions": SOAK_TXNS,
            "horizon_sim_s": horizon_us / 1e6,
            "records_total": len(records),
        },
        "batch": {
            "retained_records": len(records),
            "violations": batch_fmt,
        },
        "streaming": {
            "records_checked": checker.records_checked,
            "peak_open_state": checker.peak_open_state,
            "retained_ratio": (
                checker.peak_open_state / len(records) if records else 0.0
            ),
            "violations": stream_fmt,
        },
        "causal": {
            "clocks_allocated": order.clocks_allocated,
            "send_edges": order.send_edges,
            "unmatched_rx": order.unmatched_rx,
            "processes": len(order.processes),
        },
        "records_per_sim_second": (
            len(records) / (horizon_us / 1e6) if horizon_us else 0.0
        ),
        "verdicts_equal": batch_fmt == stream_fmt,
    }

    out(
        f"soak: {len(records)} records over "
        f"{horizon_us / 1e6:.2f} simulated seconds "
        f"({SOAK_TXNS} transactions, seed {SOAK_SEED})"
    )
    out(
        f"batch:     retained {len(records)} records, "
        f"{len(batch_fmt)} violation(s), "
        f"checked in {batch_s * 1000.0:.1f}ms wall "
        f"({_rate(len(records), batch_s)} records/sec)"
    )
    out(
        f"streaming: peak open state {checker.peak_open_state} "
        f"({body['streaming']['retained_ratio'] * 100.0:.3f}% of trace), "
        f"{len(stream_fmt)} violation(s), "
        f"run+checked in {stream_s * 1000.0:.1f}ms wall"
    )
    out(
        "verdicts: identical"
        if body["verdicts_equal"]
        else "verdicts: DIVERGED"
    )
    return body


def _rate(count: int, seconds: float) -> str:
    if seconds <= 0.0:
        return "inf"
    return f"{count / seconds:,.0f}"
