"""Wait-for-graph deadlock detection (rule SODA013).

A SODA client blocked in REQUEST holds whatever resources its earlier
transactions acquired while waiting for the server to ACCEPT — the
classic hold-and-wait ingredient.  The trace shows exactly who waits on
whom: every transaction span that is still *pending* at end of trace
(REQUEST issued, no terminal COMPLETE/cancel) is an edge

    requester mid  ──waits-for──▶  server mid

A cycle in that graph is a deadlock witness: every node on the cycle is
blocked waiting for a node that is itself blocked.  The §4.4.3 dining
philosophers under the no-arbitration variant (grab your *own* fork
before requesting your neighbour's) produce the textbook 5-cycle.

Self-loops count: a client requesting a pattern served by its own node
while its server task is blocked on the client is the degenerate case.

Detection is Tarjan's SCC algorithm, iterative (traces can open many
spans) and deterministic (nodes visited in sorted order, so component
ordering and diagnostic text never depend on hash seeds).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.causal.races import CausalDiagnostic
from repro.obs.spans import TransactionSpan, build_spans
from repro.sim.tracing import TraceRecord


class WaitForGraph:
    """Who waits on whom, plus the witness spans behind each edge."""

    def __init__(self) -> None:
        self.edges: Dict[int, Set[int]] = {}
        #: (requester, server) -> pending spans proving the edge.
        self.witnesses: Dict[Tuple[int, int], List[TransactionSpan]] = {}

    def add_wait(self, span: TransactionSpan) -> None:
        self.edges.setdefault(span.requester_mid, set()).add(span.server_mid)
        self.witnesses.setdefault(
            (span.requester_mid, span.server_mid), []
        ).append(span)

    @property
    def nodes(self) -> List[int]:
        seen: Set[int] = set(self.edges)
        for targets in self.edges.values():
            seen |= targets
        return sorted(seen)

    def cycles(self) -> List[List[int]]:
        """All deadlocked components: SCCs with more than one node, or a
        single node waiting on itself.  Deterministic order."""
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        components: List[List[int]] = []

        for root in self.nodes:
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator position) frames.
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = sorted(self.edges.get(node, ()))
                recursed = False
                for i in range(pos, len(successors)):
                    succ = successors[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recursed:
                    continue
                if lowlink[node] == index[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self.edges.get(
                        node, ()
                    ):
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        components.sort()
        return components


def build_wait_graph(records: Sequence[TraceRecord]) -> WaitForGraph:
    """The wait-for graph of every span still pending at end of trace."""
    graph = WaitForGraph()
    for span in build_spans(records):
        if span.status != "pending" or span.is_discover:
            continue
        if span.server_mid is None or span.server_mid < 0:
            continue
        graph.add_wait(span)
    return graph


def detect_deadlocks(
    records: Sequence[TraceRecord],
) -> List[CausalDiagnostic]:
    """SODA013: one diagnostic per wait-for cycle, with span witnesses."""
    graph = build_wait_graph(records)
    diagnostics: List[CausalDiagnostic] = []
    for component in graph.cycles():
        witness: List[str] = []
        earliest = None
        # Walk the cycle's edges in sorted order so the witness list is
        # stable; only edges inside the component matter.
        members = set(component)
        for requester in component:
            for server in sorted(graph.edges.get(requester, ())):
                if server not in members:
                    continue
                for span in graph.witnesses[(requester, server)]:
                    witness.append(
                        f"mid {requester} blocked on REQUEST "
                        f"<tid={span.tid}> to mid {server} since "
                        f"t={span.request_us / 1000.0:.3f}ms"
                    )
                    if earliest is None or span.request_us < earliest:
                        earliest = span.request_us
        ring = " -> ".join(str(m) for m in component + [component[0]])
        diagnostics.append(
            CausalDiagnostic(
                "SODA013",
                earliest if earliest is not None else 0.0,
                component[0],
                f"wait-for cycle among mids {{{', '.join(map(str, component))}}} "
                f"({ring}): every node is blocked in REQUEST on the next — "
                f"hold-and-wait deadlock; no ACCEPT can ever run",
                witness=tuple(witness),
            )
        )
    return diagnostics
