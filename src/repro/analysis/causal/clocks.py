"""Vector clocks over a kernel trace (happens-before reconstruction).

Every trace record that names a node (``mid``) is an *event* of that
node's current **process**: the pair ``(mid, epoch)``, where the epoch
counts client resets (DIE/KILL/crash all funnel through
``kernel.client_reset``).  Events are ordered by:

* **program order** — successive events of the same node.  Epochs chain:
  the first event of incarnation N+1 follows the last event of
  incarnation N, because one physical kernel executes both;
* **send/receive edges** — a ``kernel.rx`` record joins the clock its
  matching ``kernel.tx`` carried.  The match is the NIC frame id
  (``fid``): every (re)transmission is a fresh frame, so a frame id
  pairs exactly one tx with its rx (broadcast frames fan out to many
  rx, all inheriting the one tx clock).

Clocks are indexed by ``mid`` (one component per node): same-node events
are totally ordered regardless of epoch, so per-node components suffice
and the clock width stays fixed for the whole trace.  The epoch is kept
as per-event metadata for the rules that need incarnation identity
(SODA011/SODA012).

Traces missing ``fid`` fields (pre-PR-6 captures, truncated ring
buffers) degrade gracefully: the edge is simply not drawn, weakening the
relation toward "everything cross-node is concurrent" — safe for the
race rules, which only *suppress* diagnostics when an order exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.frame import BROADCAST_MID
from repro.sim.tracing import TraceRecord

#: A process identity: (mid, epoch).
ProcId = Tuple[int, int]


class CausalOrder:
    """The queryable happens-before relation of one trace.

    Built by :func:`build_causal_order`; query with record *indices*
    (positions in the record sequence the order was built from).
    """

    def __init__(
        self,
        records: Sequence[TraceRecord],
        clocks: List[Optional[Tuple[int, ...]]],
        procs: List[Optional[ProcId]],
        mid_index: Dict[int, int],
        send_edges: int,
        unmatched_rx: int,
    ) -> None:
        self.records = records
        self._clocks = clocks
        self._procs = procs
        self._mid_index = mid_index
        #: rx events that inherited a tx clock through a frame id.
        self.send_edges = send_edges
        #: rx events whose frame id had no recorded tx (lost prefix,
        #: pre-correlation trace): no edge drawn.
        self.unmatched_rx = unmatched_rx

    # -- stats -------------------------------------------------------------

    @property
    def clocks_allocated(self) -> int:
        return sum(1 for clock in self._clocks if clock is not None)

    @property
    def processes(self) -> List[ProcId]:
        return sorted({proc for proc in self._procs if proc is not None})

    # -- queries -----------------------------------------------------------

    def clock(self, index: int) -> Optional[Tuple[int, ...]]:
        """The vector clock of record ``index`` (None if unclocked)."""
        return self._clocks[index]

    def proc(self, index: int) -> Optional[ProcId]:
        """The (mid, epoch) process record ``index`` belongs to."""
        return self._procs[index]

    def happens_before(self, i: int, j: int) -> bool:
        """True iff event ``i`` is in event ``j``'s causal past."""
        a, b = self._clocks[i], self._clocks[j]
        if a is None or b is None or a == b:
            return False
        return all(x <= y for x, y in zip(a, b))

    def ordered(self, i: int, j: int) -> bool:
        return self.happens_before(i, j) or self.happens_before(j, i)

    def concurrent(self, i: int, j: int) -> bool:
        """True iff both events are clocked and neither precedes the
        other (clock-incomparable)."""
        a, b = self._clocks[i], self._clocks[j]
        if a is None or b is None:
            return False
        return not self.ordered(i, j)

    def describe(self, index: int) -> str:
        """A witness line: record index, time, category, process."""
        rec = self.records[index]
        proc = self._procs[index]
        where = f"mid={proc[0]}/e{proc[1]}" if proc is not None else "-"
        return (
            f"#{index} t={rec.time / 1000.0:.3f}ms {rec.category} [{where}]"
        )


def build_causal_order(records: Sequence[TraceRecord]) -> CausalOrder:
    """Assign a vector clock to every node event of ``records``."""
    mids = sorted(
        {
            rec["mid"]
            for rec in records
            if rec.get("mid") is not None and rec["mid"] >= 0
        }
    )
    mid_index = {mid: i for i, mid in enumerate(mids)}
    width = len(mids)

    current: Dict[int, List[int]] = {mid: [0] * width for mid in mids}
    epochs: Dict[int, int] = {mid: 0 for mid in mids}
    #: fid -> (sender clock snapshot, broadcast?)
    pending: Dict[int, Tuple[Tuple[int, ...], bool]] = {}

    clocks: List[Optional[Tuple[int, ...]]] = []
    procs: List[Optional[ProcId]] = []
    send_edges = 0
    unmatched_rx = 0

    for rec in records:
        mid = rec.get("mid")
        if mid is None or mid not in mid_index:
            clocks.append(None)
            procs.append(None)
            continue
        category = rec.category
        if category == "kernel.client_reset":
            # The reset record is the first event of the new incarnation
            # (the kernel bumps its epoch before emitting it).
            epochs[mid] = rec.get("epoch", epochs[mid] + 1)
        clock = current[mid]
        clock[mid_index[mid]] += 1
        if category == "kernel.rx":
            fid = rec.get("fid")
            if fid is not None:
                entry = pending.get(fid)
                if entry is None:
                    unmatched_rx += 1
                else:
                    snapshot, broadcast = entry
                    for k, component in enumerate(snapshot):
                        if component > clock[k]:
                            clock[k] = component
                    send_edges += 1
                    if not broadcast:
                        del pending[fid]
        snapshot = tuple(clock)
        if category == "kernel.tx":
            fid = rec.get("fid")
            if fid is not None:
                pending[fid] = (snapshot, rec.get("dst") == BROADCAST_MID)
        clocks.append(snapshot)
        procs.append((mid, epochs[mid]))

    return CausalOrder(
        records, clocks, procs, mid_index, send_edges, unmatched_rx
    )


def happens_before_pairs(
    order: CausalOrder, indices: Iterable[int]
) -> List[Tuple[int, int]]:
    """All ordered pairs (i, j) with i ≺ j among ``indices`` — a small
    helper for tests and exploratory tooling."""
    idx = sorted(indices)
    return [
        (i, j)
        for i in idx
        for j in idx
        if i != j and order.happens_before(i, j)
    ]
