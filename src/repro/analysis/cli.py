"""CLI entry points for ``python -m repro lint`` / ``check-trace`` /
``causal`` / ``causal-bench``."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.causal import (
    IncrementalChecker,
    build_causal_order,
    check_stream,
    detect_deadlocks,
    find_races,
)
from repro.analysis.causal.bench import run_causal_bench as _causal_bench
from repro.analysis.invariants import check_network
from repro.analysis.linter import LintConfig, has_errors, lint_paths
from repro.analysis.workloads import (
    CAUSAL_WORKLOADS,
    WORKLOADS,
    build_workload,
    run_workload,
)
from repro.obs.export import emit_snapshot

#: Linted by default: the repo's own client programs.
DEFAULT_LINT_PATHS = ("src/repro/apps", "examples")


def _emit(json_path: Optional[str], kind: str, body: Dict[str, Any], out) -> None:
    if json_path:
        emit_snapshot(json_path, kind, body, out=out)


def run_lint(
    argv: Sequence[str], out=print, json_path: Optional[str] = None
) -> int:
    """``python -m repro lint [--disable=IDS] [--json PATH] [paths...]``;
    0 = clean."""
    paths: List[str] = []
    disabled: List[str] = []
    for arg in argv:
        if arg.startswith("--disable="):
            disabled.extend(
                part.strip()
                for part in arg.split("=", 1)[1].split(",")
                if part.strip()
            )
        else:
            paths.append(arg)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        out(f"sodalint: no such file or directory: {', '.join(missing)}")
        return 2
    config = LintConfig(disabled=frozenset(disabled))
    diagnostics = lint_paths(paths or list(DEFAULT_LINT_PATHS), config)
    for diag in diagnostics:
        out(diag.format())
    errors = sum(1 for d in diagnostics if d.severity.value == "error")
    out(
        f"sodalint: {len(diagnostics)} finding(s), {errors} error(s) "
        f"in {', '.join(paths or DEFAULT_LINT_PATHS)}"
    )
    _emit(
        json_path,
        "lint",
        {
            "paths": list(paths or DEFAULT_LINT_PATHS),
            "disabled": sorted(disabled),
            "findings": [d.to_dict() for d in diagnostics],
            "errors": errors,
        },
        out,
    )
    return 1 if has_errors(diagnostics) else 0


def run_check_trace(
    argv: Sequence[str], out=print, json_path: Optional[str] = None
) -> int:
    """``python -m repro check-trace [--streaming] [--json PATH]
    [workload...]``; 0 = all hold.

    ``--streaming`` checks with the O(open-state) incremental checker
    attached as a live tracer sink instead of replaying the retained
    trace, and additionally asserts both checkers agree.
    """
    streaming = "--streaming" in argv
    names = [arg for arg in argv if not arg.startswith("-")]
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        out(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(WORKLOADS))}"
        )
        return 1
    if not names:
        names = sorted(WORKLOADS)
    failures = 0
    results: List[Dict[str, Any]] = []
    for name in names:
        if streaming:
            built = build_workload(name)
            checker = IncrementalChecker(
                network=built.net, strict_completion=True
            ).install(built.net)
            net = built.run()
            violations = checker.finish(ledger=net.ledger)
            batch = check_network(net, strict_completion=True)
            agree = [v.format() for v in violations] == [
                v.format() for v in batch
            ]
        else:
            net = run_workload(name)
            violations = check_network(net, strict_completion=True)
            agree = True
        records = len(net.sim.trace.records)
        if violations or not agree:
            failures += 1
            out(f"{name}: FAILED ({records} trace records)")
            for violation in violations:
                out(f"    {violation.format()}")
            if not agree:
                out("    streaming checker disagreed with batch replay")
        else:
            mode = ", streaming" if streaming else ""
            out(
                f"{name}: ok ({records} trace records, "
                f"all invariants hold{mode})"
            )
        results.append(
            {
                "workload": name,
                "records": records,
                "violations": [v.format() for v in violations],
                "streaming_agrees": agree,
            }
        )
    out(
        f"check-trace: {len(names) - failures}/{len(names)} workload(s) clean"
    )
    _emit(
        json_path,
        "check_trace",
        {"streaming": streaming, "workloads": results},
        out,
    )
    return 1 if failures else 0


def run_causal(
    argv: Sequence[str], out=print, json_path: Optional[str] = None
) -> int:
    """``python -m repro causal [--json PATH] [workload...]``; 0 = no
    causal diagnostics and streaming agrees with batch.

    Runs each workload, builds the happens-before relation, and reports
    races (SODA010-012), wait-for deadlocks (SODA013), and
    streaming/batch checker agreement.  The default set is the standard
    (clean) workloads; the causal-only pathology demos — e.g.
    ``philosophers_noarb``, which must FAIL with a SODA013 cycle — run
    only when named explicitly.
    """
    names = [arg for arg in argv if not arg.startswith("-")]
    unknown = [name for name in names if name not in CAUSAL_WORKLOADS]
    if unknown:
        out(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(CAUSAL_WORKLOADS))}"
        )
        return 1
    if not names:
        names = sorted(WORKLOADS)
    failing = 0
    results: List[Dict[str, Any]] = []
    hub = None
    try:
        from repro.obs.instrument import MetricsHub

        hub = MetricsHub()
    except Exception:  # pragma: no cover - obs is a hard dep in-tree
        pass
    for name in names:
        built = build_workload(name)
        checker = IncrementalChecker(
            network=built.net, strict_completion=False
        ).install(built.net)
        net = built.run()
        records = list(net.sim.trace.records)
        stream_verdicts = [
            v.format() for v in checker.finish(ledger=net.ledger)
        ]
        batch_verdicts = [
            v.format()
            for v in check_network(net, strict_completion=False)
        ]
        agree = stream_verdicts == batch_verdicts
        order = build_causal_order(records)
        races = find_races(records, order)
        deadlocks = detect_deadlocks(records)
        diagnostics = races + deadlocks
        if hub is not None:
            hub.note_analysis(checker, order)
        ok = agree and not diagnostics
        if not ok:
            failing += 1
        status = "ok" if ok else "FAILED"
        out(
            f"{name}: {status} ({len(records)} records, "
            f"{order.clocks_allocated} clocks, "
            f"{order.send_edges} send/recv edges, "
            f"peak open state {checker.peak_open_state})"
        )
        for diag in diagnostics:
            out(f"    {diag.format()}")
        if not agree:
            out("    streaming checker disagreed with batch replay")
        results.append(
            {
                "workload": name,
                "records": len(records),
                "clocks_allocated": order.clocks_allocated,
                "send_edges": order.send_edges,
                "unmatched_rx": order.unmatched_rx,
                "processes": len(order.processes),
                "peak_open_state": checker.peak_open_state,
                "diagnostics": [d.format() for d in diagnostics],
                "streaming_agrees": agree,
            }
        )
    out(f"causal: {len(names) - failing}/{len(names)} workload(s) clean")
    _emit(json_path, "causal", {"workloads": results}, out)
    return 1 if failing else 0


def run_causal_bench_cli(
    argv: Sequence[str], out=print, json_path: Optional[str] = None
) -> int:
    """``python -m repro causal-bench [--json PATH]``."""
    body = _causal_bench(out=out)
    _emit(json_path, "causal_bench", body, out)
    return 0 if body["verdicts_equal"] else 1
