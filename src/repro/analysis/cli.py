"""CLI entry points for ``python -m repro lint`` / ``check-trace``."""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence

from repro.analysis.invariants import check_network
from repro.analysis.linter import LintConfig, has_errors, lint_paths
from repro.analysis.workloads import WORKLOADS, run_workload

#: Linted by default: the repo's own client programs.
DEFAULT_LINT_PATHS = ("src/repro/apps", "examples")


def run_lint(argv: Sequence[str], out=print) -> int:
    """``python -m repro lint [--disable=IDS] [paths...]``; 0 = clean."""
    paths: List[str] = []
    disabled: List[str] = []
    for arg in argv:
        if arg.startswith("--disable="):
            disabled.extend(
                part.strip()
                for part in arg.split("=", 1)[1].split(",")
                if part.strip()
            )
        else:
            paths.append(arg)
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        out(f"sodalint: no such file or directory: {', '.join(missing)}")
        return 2
    config = LintConfig(disabled=frozenset(disabled))
    diagnostics = lint_paths(paths or list(DEFAULT_LINT_PATHS), config)
    for diag in diagnostics:
        out(diag.format())
    errors = sum(1 for d in diagnostics if d.severity.value == "error")
    out(
        f"sodalint: {len(diagnostics)} finding(s), {errors} error(s) "
        f"in {', '.join(paths or DEFAULT_LINT_PATHS)}"
    )
    return 1 if has_errors(diagnostics) else 0


def run_check_trace(argv: Sequence[str], out=print) -> int:
    """``python -m repro check-trace [workload...]``; 0 = all hold."""
    names = [arg for arg in argv if not arg.startswith("-")]
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        out(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(WORKLOADS))}"
        )
        return 1
    if not names:
        names = sorted(WORKLOADS)
    failures = 0
    for name in names:
        net = run_workload(name)
        violations = check_network(net, strict_completion=True)
        records = len(net.sim.trace.records)
        if violations:
            failures += 1
            out(f"{name}: FAILED ({records} trace records)")
            for violation in violations:
                out(f"    {violation.format()}")
        else:
            out(f"{name}: ok ({records} trace records, all invariants hold)")
    out(
        f"check-trace: {len(names) - failures}/{len(names)} workload(s) clean"
    )
    return 1 if failures else 0
