"""The per-module AST model shared by lint rules.

A :class:`ModuleModel` is built once per source file and handed to every
rule.  It indexes the things SODA rules care about: which classes are
client programs, which methods run in handler context, what the SODAL
api parameter is called, and how reserved-pattern names were imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Names exported by :mod:`repro.core.boot` that denote reserved
#: patterns a client must never ADVERTISE.
RESERVED_PATTERN_NAMES = frozenset(
    {"DEFAULT_KILL_PATTERN", "SYSTEM_PATTERN", "KERNEL_RMR_PATTERN"}
)

#: Calls that mint reserved patterns.
RESERVED_PATTERN_FACTORIES = frozenset(
    {"make_reserved_pattern", "boot_pattern_for"}
)

#: Program-section method names; ``handler`` and ``initialization`` run
#: as kernel handler invocations (the BOOTING handler included, §3.7.6).
HANDLER_SECTIONS = frozenset({"handler", "initialization"})
PROGRAM_SECTIONS = frozenset({"handler", "initialization", "task"})


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``api.kernel.patterns`` -> ``['api', 'kernel', 'patterns']``.

    Returns None for anything that is not a pure Name/Attribute chain
    (calls or subscripts in the middle break the chain).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def normalized_chain(node: ast.AST) -> Optional[List[str]]:
    """Attribute chain with a leading ``self`` stripped."""
    chain = attribute_chain(node)
    if chain and chain[0] == "self" and len(chain) > 1:
        return chain[1:]
    return chain


@dataclass
class ProgramClass:
    """One class recognized as a SODA client program."""

    node: ast.ClassDef
    #: Program-section methods present on the class (name -> FunctionDef).
    sections: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: All methods (name -> FunctionDef), sections included.
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def handler_sections(self) -> Iterator[ast.FunctionDef]:
        for name in HANDLER_SECTIONS:
            if name in self.sections:
                yield self.sections[name]


@dataclass
class ModuleModel:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    program_classes: List[ProgramClass]
    #: Local aliases of reserved-pattern *names* (import indirection):
    #: ``from repro.core.boot import SYSTEM_PATTERN as SYS`` -> {"SYS"}.
    reserved_aliases: Set[str]
    #: Local aliases of reserved-pattern *factory functions*.
    reserved_factories: Set[str]
    #: Module-level names assigned from a reserved factory call:
    #: ``BOOT = boot_pattern_for("vax")`` -> {"BOOT"}.
    reserved_locals: Set[str]

    def walk_program_code(self) -> Iterator[Tuple[ProgramClass, ast.AST]]:
        """Every AST node inside a program class body."""
        for cls in self.program_classes:
            for node in ast.walk(cls.node):
                yield cls, node


def _is_program_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        chain = attribute_chain(base)
        if chain and (
            chain[-1] == "ClientProgram" or chain[-1].endswith("Program")
        ):
            return True
    # Duck-typed: defines a program section taking an ``api`` parameter.
    for stmt in node.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in PROGRAM_SECTIONS
        ):
            args = [a.arg for a in stmt.args.args]
            if len(args) >= 2 and args[1] == "api":
                return True
    return False


def build_model(source: str, path: str) -> ModuleModel:
    """Parse ``source`` and index it for the lint rules.

    Raises :class:`SyntaxError` if the file does not parse; the linter
    converts that into a SODA000 diagnostic.
    """
    tree = ast.parse(source, filename=path)
    program_classes: List[ProgramClass] = []
    reserved_aliases: Set[str] = set()
    reserved_factories: Set[str] = set()
    reserved_locals: Set[str] = set()

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_program_class(node):
            cls = ProgramClass(node=node)
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    cls.methods[stmt.name] = stmt
                    if stmt.name in PROGRAM_SECTIONS:
                        cls.sections[stmt.name] = stmt
            program_classes.append(cls)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name in RESERVED_PATTERN_NAMES:
                    reserved_aliases.add(local)
                elif alias.name in RESERVED_PATTERN_FACTORIES:
                    reserved_factories.add(local)

    # Second pass: module-level names bound to reserved factory calls.
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            func = node.value.func
            callee = attribute_chain(func)
            if callee and (
                callee[-1] in RESERVED_PATTERN_FACTORIES
                or callee[-1] in reserved_factories
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        reserved_locals.add(target.id)

    return ModuleModel(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        program_classes=program_classes,
        reserved_aliases=reserved_aliases,
        reserved_factories=reserved_factories,
        reserved_locals=reserved_locals,
    )


def api_receiver(node: ast.AST) -> bool:
    """Is this expression the SODAL api object (``api`` / ``self.api``)?"""
    chain = normalized_chain(node)
    return chain == ["api"]


def api_call_name(call: ast.Call) -> Optional[str]:
    """``api.foo(...)`` / ``self.api.foo(...)`` -> ``"foo"``, else None."""
    if isinstance(call.func, ast.Attribute) and api_receiver(call.func.value):
        return call.func.attr
    return None
