"""A file service (§4.4.5).

A client locates the file server with DISCOVER, opens a file by
EXCHANGEing its name against the well-known OPEN pattern (receiving a
freshly-minted *file-descriptor pattern*), and then performs SEEK / READ
/ WRITE / CLOSE as EXCHANGEs against that fd pattern.  The handler only
queues operations; the task performs them — the paper's own structure.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import AcceptStatus, RequestStatus, SodaError
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import RequesterSignature, ServerSignature
from repro.sodal.queueing import Queue

FILESERVER_PATTERN: Pattern = make_well_known_pattern(0o440)
OPEN_PATTERN: Pattern = make_well_known_pattern(0o441)

#: Operation codes carried in the REQUEST argument ("kind", §4.4.5).
OP_CLOSE = 1
OP_SEEK = 2
OP_READ = 3
OP_WRITE = 4

#: Error indicator returned in the ACCEPT argument (negative = error).
ERR_BAD_FD = -2
ERR_BAD_OP = -3


@dataclass
class _OpenFile:
    name: str
    position: int = 0


@dataclass
class _FileOperation:
    """The paper's FILE_OPERATION record."""

    client: RequesterSignature
    operation: int
    fd_pattern: Pattern
    put_size: int
    get_size: int


class FileServer(ClientProgram):
    """An in-memory file server."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None, op_queue: int = 16):
        self.files: Dict[str, bytearray] = {
            name: bytearray(data) for name, data in (files or {}).items()
        }
        self.op_queue_size = op_queue
        self.open_files: Dict[Pattern, _OpenFile] = {}
        self.ops_performed = 0

    def initialization(self, api, parent_mid):
        self.op_queue: Queue[_FileOperation] = Queue(self.op_queue_size)
        yield from api.advertise(FILESERVER_PATTERN)
        yield from api.advertise(OPEN_PATTERN)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if event.pattern == OPEN_PATTERN:
            yield from self._handle_open(api, event)
        elif event.pattern in self.open_files:
            yield from api.enqueue(
                self.op_queue,
                _FileOperation(
                    client=event.asker,
                    operation=event.arg,
                    fd_pattern=event.pattern,
                    put_size=event.put_size,
                    get_size=event.get_size,
                ),
            )
        # FILESERVER_PATTERN requests carry no operation; used only for
        # DISCOVER, which the kernel answers without client involvement.

    def _handle_open(self, api, event) -> Generator:
        fd_pattern = yield from api.getuniqueid()
        yield from api.advertise(fd_pattern)
        name_buf = Buffer(event.put_size)
        status = yield from api.accept_current_exchange(
            get=name_buf, put=int(fd_pattern).to_bytes(6, "big")
        )
        if status is not AcceptStatus.SUCCESS:
            yield from api.unadvertise(fd_pattern)
            return
        name = name_buf.data.decode("utf-8", errors="replace")
        if name not in self.files:
            self.files[name] = bytearray()
        self.open_files[fd_pattern] = _OpenFile(name=name)
        # "File opening errors are detected upon the first use" (§4.4.5).

    def task(self, api):
        while True:
            yield from api.poll(lambda: not self.op_queue.is_empty())
            op = yield from api.dequeue(self.op_queue)
            yield from self._perform(api, op)
            self.ops_performed += 1

    def _perform(self, api, op: _FileOperation) -> Generator:
        open_file = self.open_files.get(op.fd_pattern)
        if open_file is None:
            yield from api.accept(op.client, arg=ERR_BAD_FD)
            return
        data = self.files[open_file.name]
        if op.operation == OP_READ:
            chunk = bytes(data[open_file.position : open_file.position + op.get_size])
            open_file.position += len(chunk)
            yield from api.accept_get(op.client, arg=len(chunk), put=chunk)
        elif op.operation == OP_WRITE:
            buf = Buffer(op.put_size)
            status = yield from api.accept_put(op.client, arg=op.put_size, get=buf)
            if status is AcceptStatus.SUCCESS:
                pos = open_file.position
                data[pos : pos + len(buf.data)] = buf.data
                open_file.position += len(buf.data)
        elif op.operation == OP_SEEK:
            buf = Buffer(op.put_size)
            status = yield from api.accept_put(op.client, arg=0, get=buf)
            if status is AcceptStatus.SUCCESS and len(buf.data) >= 4:
                open_file.position = struct.unpack(">I", buf.data[:4])[0]
        elif op.operation == OP_CLOSE:
            yield from api.accept(op.client, arg=0)
            yield from api.unadvertise(op.fd_pattern)
            del self.open_files[op.fd_pattern]
        else:
            yield from api.accept(op.client, arg=ERR_BAD_OP)


class RemoteFile:
    """Client-side handle following the paper's protocol."""

    def __init__(self, api, server: ServerSignature, fd_pattern: Pattern):
        self.api = api
        self.server_mid = server.mid
        self.fd_pattern = fd_pattern
        self.closed = False

    @classmethod
    def open(cls, api, fs_mid: int, name: str) -> Generator:
        """EXCHANGE the name for a file-descriptor pattern."""
        fd_buf = Buffer(6)
        completion = yield from api.b_exchange(
            ServerSignature(fs_mid, OPEN_PATTERN), put=name, get=fd_buf
        )
        if completion.status is not RequestStatus.COMPLETED or len(fd_buf.data) < 6:
            raise SodaError(f"open({name!r}) failed: {completion.status.value}")
        fd_pattern = int.from_bytes(fd_buf.data, "big")
        return cls(api, ServerSignature(fs_mid, OPEN_PATTERN), fd_pattern)

    def _sig(self) -> ServerSignature:
        return ServerSignature(self.server_mid, self.fd_pattern)

    def _check_open(self) -> None:
        if self.closed:
            raise SodaError("file is closed")

    def read(self, nbytes: int) -> Generator:
        self._check_open()
        buf = Buffer(nbytes)
        completion = yield from self.api.b_exchange(
            self._sig(), arg=OP_READ, get=buf
        )
        if completion.status is not RequestStatus.COMPLETED or completion.arg < 0:
            raise SodaError(f"read failed: {completion.status.value}/{completion.arg}")
        return buf.data

    def write(self, data) -> Generator:
        self._check_open()
        completion = yield from self.api.b_exchange(
            self._sig(), arg=OP_WRITE, put=data
        )
        if completion.status is not RequestStatus.COMPLETED or completion.arg < 0:
            raise SodaError(f"write failed: {completion.status.value}/{completion.arg}")
        return completion.taken_put

    def seek(self, position: int) -> Generator:
        self._check_open()
        completion = yield from self.api.b_exchange(
            self._sig(), arg=OP_SEEK, put=struct.pack(">I", position)
        )
        if completion.status is not RequestStatus.COMPLETED or completion.arg < 0:
            raise SodaError(f"seek failed: {completion.status.value}/{completion.arg}")

    def close(self) -> Generator:
        self._check_open()
        completion = yield from self.api.b_exchange(self._sig(), arg=OP_CLOSE)
        self.closed = True
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError(f"close failed: {completion.status.value}")
