"""The paper's programmed examples (§4.4), as reusable applications.

1. two-way bounded buffer (producer/consumer with double buffering);
2. four-way bounded buffer (two device-attached clients, CTRL-S/CTRL-Q);
3. dining philosophers with deadlock detector and timeserver;
4. concurrent readers and writers (a moderator process);
5. a file service.
"""

from repro.apps.bounded_buffer import BufferConsumer, BufferProducer, CONSUMER_PATTERN
from repro.apps.file_server import FileServer, RemoteFile, FILESERVER_PATTERN
from repro.apps.four_way import Device, FourWayClient
from repro.apps.philosophers import DeadlockDetector, Philosopher
from repro.apps.readers_writers import (
    Moderator,
    ReaderWriterClient,
    rw_end_read,
    rw_end_write,
    rw_start_read,
    rw_start_write,
)

__all__ = [
    "BufferConsumer",
    "BufferProducer",
    "CONSUMER_PATTERN",
    "DeadlockDetector",
    "Device",
    "FILESERVER_PATTERN",
    "FileServer",
    "FourWayClient",
    "Moderator",
    "Philosopher",
    "ReaderWriterClient",
    "RemoteFile",
    "rw_end_read",
    "rw_end_write",
    "rw_start_read",
    "rw_start_write",
]
