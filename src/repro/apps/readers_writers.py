"""Concurrent readers and writers (§4.4.4).

A *moderator* process grants READ/WRITE access to a database with the
paper's fairness rule: while a write request is pending no new read
requests are honored, and when a write finishes, the readers that
accumulated during it are all honored before any new write begins.

Clients call START_READ / END_READ / START_WRITE / END_WRITE as blocking
SIGNALs; the moderator ACCEPTs a START only when access is safe (the
two-phase REQUEST/ACCEPT split is exactly the scheduling freedom §6.7
advertises).

Note: the paper's pseudocode contains three evident typos (START_READ
enqueues on WriteQueue, a granted START_WRITE never increments
writecount, END_READ increments readcount when granting a writer); this
implementation is the intended algorithm.
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus, SodaError
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import ServerSignature
from repro.sodal.queueing import Queue

START_READ: Pattern = make_well_known_pattern(0o450)
END_READ: Pattern = make_well_known_pattern(0o451)
START_WRITE: Pattern = make_well_known_pattern(0o452)
END_WRITE: Pattern = make_well_known_pattern(0o453)


class Moderator(ClientProgram):
    """The concurrency-control service; all work happens in the handler."""

    def __init__(self, queue_size: int = 16) -> None:
        self.queue_size = queue_size
        self.readcount = 0
        self.writecount = 0
        self.max_concurrent_readers = 0
        self.grants: List[str] = []

    def initialization(self, api, parent_mid):
        self.read_queue = Queue(self.queue_size)
        self.write_queue = Queue(self.queue_size)
        for pattern in (START_READ, END_READ, START_WRITE, END_WRITE):
            yield from api.advertise(pattern)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if event.pattern == START_READ:
            if self.write_queue.is_empty() and self.writecount == 0:
                yield from api.accept_current_signal()
                self._note_read_granted()
            else:
                yield from api.enqueue(self.read_queue, event.asker)
        elif event.pattern == START_WRITE:
            if self.readcount == 0 and self.writecount == 0:
                yield from api.accept_current_signal()
                self._note_write_granted()
            else:
                yield from api.enqueue(self.write_queue, event.asker)
        elif event.pattern == END_READ:
            yield from api.accept_current_signal()
            self.readcount -= 1
            if self.readcount == 0 and not self.write_queue.is_empty():
                asker = yield from api.dequeue(self.write_queue)
                yield from api.accept_signal(asker)
                self._note_write_granted()
        elif event.pattern == END_WRITE:
            yield from api.accept_current_signal()
            self.writecount -= 1
            if not self.read_queue.is_empty():
                # Honor every reader that accumulated during the write.
                while not self.read_queue.is_empty():
                    asker = yield from api.dequeue(self.read_queue)
                    yield from api.accept_signal(asker)
                    self._note_read_granted()
            elif not self.write_queue.is_empty():
                asker = yield from api.dequeue(self.write_queue)
                yield from api.accept_signal(asker)
                self._note_write_granted()

    def _note_read_granted(self) -> None:
        self.readcount += 1
        self.grants.append("r")
        self.max_concurrent_readers = max(self.max_concurrent_readers, self.readcount)

    def _note_write_granted(self) -> None:
        self.writecount += 1
        self.grants.append("w")


def _moderated(api, moderator_mid: int, pattern: Pattern) -> Generator:
    for _attempt in range(50):
        completion = yield from api.b_signal(
            ServerSignature(moderator_mid, pattern)
        )
        if completion.status is RequestStatus.COMPLETED:
            return
        if completion.status is RequestStatus.UNADVERTISED:
            # The moderator may still be booting; try again shortly.
            yield api.compute(5_000)
            continue
        break
    raise SodaError(f"moderator call failed: {completion.status.value}")


def rw_start_read(api, moderator_mid: int) -> Generator:
    yield from _moderated(api, moderator_mid, START_READ)


def rw_end_read(api, moderator_mid: int) -> Generator:
    yield from _moderated(api, moderator_mid, END_READ)


def rw_start_write(api, moderator_mid: int) -> Generator:
    yield from _moderated(api, moderator_mid, START_WRITE)


def rw_end_write(api, moderator_mid: int) -> Generator:
    yield from _moderated(api, moderator_mid, END_WRITE)


class ReaderWriterClient(ClientProgram):
    """A test/demo client doing a scripted sequence of reads and writes.

    ``script`` is a list of ("read"|"write", hold_us, pre_delay_us).
    The shared-state invariant is checked against ``shared``: a dict
    with keys ``readers`` and ``writers`` mutated under the moderator's
    protection; violations are recorded in ``shared["violations"]``.
    """

    def __init__(self, moderator_mid: int, script, shared) -> None:
        self.moderator_mid = moderator_mid
        self.script = script
        self.shared = shared
        self.completed_ops = 0

    def task(self, api):
        for kind, hold_us, pre_delay_us in self.script:
            if pre_delay_us:
                yield api.compute(pre_delay_us)
            if kind == "read":
                yield from rw_start_read(api, self.moderator_mid)
                self.shared["readers"] += 1
                self._check()
                yield api.compute(hold_us)
                self.shared["readers"] -= 1
                yield from rw_end_read(api, self.moderator_mid)
            else:
                yield from rw_start_write(api, self.moderator_mid)
                self.shared["writers"] += 1
                self._check()
                yield api.compute(hold_us)
                self.shared["writers"] -= 1
                yield from rw_end_write(api, self.moderator_mid)
            self.completed_ops += 1
        yield from api.serve_forever()

    def _check(self) -> None:
        readers = self.shared["readers"]
        writers = self.shared["writers"]
        if writers > 1 or (writers >= 1 and readers >= 1):
            self.shared["violations"].append((readers, writers))
