"""Dining philosophers with deadlock detection (§4.4.3).

The paper's novel solution: five philosopher processes each *own* their
right fork; a philosopher grabs the left fork (a SIGNAL to the left
neighbor's GETFORK entry, completed when the neighbor grants it) and
then its own fork, eats, and returns both.  A deadlock-detector process,
woken periodically by the timeserver, walks the ring asking each
philosopher whether it is *needful* (holds its left fork and has lent
its own); if it comes back around to the starting philosopher and the
TID of that philosopher's fork request is unchanged, every philosopher
has been needful throughout the probe and deadlock is certain (the
paper's induction argument).  The victim — chosen fairly via
LIST_OF_NICE_PHILOS — is told to GIVE_BACK its left fork, with the
guarantee that a returned fork comes back to the returner before the
successor uses it twice (the RETURN_FORK entry records the returner as
the next waiter).
"""

from __future__ import annotations

import enum
from typing import Generator, List, Optional

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import RequesterSignature, ServerSignature
from repro.facilities.timeservice import ALARM_CLOCK, set_alarm

GETFORK: Pattern = make_well_known_pattern(0o430)
PUTFORK: Pattern = make_well_known_pattern(0o431)
RETURN_FORK: Pattern = make_well_known_pattern(0o432)
CHECK: Pattern = make_well_known_pattern(0o433)
GIVE_BACK: Pattern = make_well_known_pattern(0o434)


class ForkState(enum.Enum):
    MINE = "mine"
    HIS = "his"
    IDLE = "idle"


class Philosopher(ClientProgram):
    """One philosopher; owns the fork shared with its right neighbor."""

    def __init__(
        self,
        left_mid: int,
        think_us: float = 2_000.0,
        eat_us: float = 2_000.0,
        meals_target: Optional[int] = None,
        grab_own_first: bool = False,
    ) -> None:
        self.left_mid = left_mid
        self.think_us = think_us
        self.eat_us = eat_us
        self.meals_target = meals_target
        #: The textbook *wrong* acquisition order: claim our own fork
        #: before requesting the neighbor's.  With every philosopher
        #: doing this simultaneously the ring deadlocks by hold-and-wait
        #: (each holds its own fork, each waits on its left neighbor) —
        #: the failure §4.4.3's grab-left-first protocol exists to
        #: avoid.  Used by the ``philosophers_noarb`` causal workload to
        #: seed a wait-for cycle for SODA013.
        self.grab_own_first = grab_own_first
        self.meals = 0
        self.give_backs = 0

    # -- state ------------------------------------------------------------
    # he_owns: the left fork (owned by the left neighbor).
    # i_own:   our own (right) fork.

    def initialization(self, api, parent_mid):
        self.he_owns = ForkState.IDLE
        self.i_own = ForkState.IDLE
        self.myrequest: Optional[int] = None  # TID of the hunger episode
        self.hisrequest: Optional[RequesterSignature] = None
        for pattern in (GETFORK, PUTFORK, RETURN_FORK, CHECK, GIVE_BACK):
            yield from api.advertise(pattern)

    def _left(self, pattern: Pattern) -> ServerSignature:
        return ServerSignature(self.left_mid, pattern)

    def grab_my_fork(self, api) -> Generator:
        """Atomically claim our own fork if it is not lent out."""
        yield from api.close()
        if self.i_own is ForkState.HIS:
            result = False
        else:
            result = True
            self.i_own = ForkState.MINE
        yield from api.open()
        return result

    def task(self, api):
        while self.meals_target is None or self.meals < self.meals_target:
            yield api.compute(self.think_us)
            if self.grab_own_first:
                # Hold-and-wait order: claim our own fork locally, then
                # block on the neighbor's.  Symmetric rings deadlock.
                while True:
                    got = yield from self.grab_my_fork(api)
                    if got:
                        break
                    yield api.idle()
                    yield from api.poll(
                        lambda: self.i_own is not ForkState.HIS
                    )
                self.myrequest = yield from api.signal(self._left(GETFORK))
                yield from api.poll(lambda: self.he_owns is ForkState.MINE)
            else:
                # Ask the left neighbor for its fork (non-blocking
                # SIGNAL; completion means the fork was granted).
                self.myrequest = yield from api.signal(self._left(GETFORK))
                yield from api.poll(lambda: self.he_owns is ForkState.MINE)
                while True:
                    got = yield from self.grab_my_fork(api)
                    if got and self.he_owns is ForkState.MINE:
                        break
                    # We may have been told to give the left fork back;
                    # wait until it returns (§4.4.3's retest).
                    if not got:
                        yield api.idle()
                    yield from api.poll(
                        lambda: self.he_owns is ForkState.MINE
                    )
            yield api.compute(self.eat_us)
            self.meals += 1
            completion = yield from api.b_signal(self._left(PUTFORK))
            assert completion.status is RequestStatus.COMPLETED
            self.i_own = ForkState.IDLE
            self.he_owns = ForkState.IDLE
            self.myrequest = None
            if self.hisrequest is not None:
                self.i_own = ForkState.HIS
                asker, self.hisrequest = self.hisrequest, None
                yield from api.accept_signal(asker)
        yield from api.serve_forever()

    def handler(self, api, event):
        if event.is_completion:
            if event.asker is not None and event.asker.tid == self.myrequest:
                # Our GETFORK (or RETURN_FORK round trip) was granted.
                self.he_owns = ForkState.MINE
            return
        if not event.is_arrival:
            return
        if event.pattern == PUTFORK:
            yield from api.accept_current_signal()
            self.i_own = ForkState.IDLE
        elif event.pattern == GETFORK:
            if self.i_own is ForkState.MINE:
                self.hisrequest = event.asker  # grant when done eating
            else:
                self.i_own = ForkState.HIS
                yield from api.accept_current_signal()
        elif event.pattern == CHECK:
            if (
                self.he_owns is ForkState.MINE
                and self.i_own is ForkState.HIS
                and self.myrequest is not None
            ):
                # Needful: report the TID of this hunger episode.
                yield from api.accept_current_get(
                    put=self.myrequest.to_bytes(8, "big")
                )
            else:
                yield from api.reject()
        elif event.pattern == GIVE_BACK:
            yield from api.accept_current_signal()
            if not (
                self.he_owns is ForkState.MINE
                and self.i_own is ForkState.HIS
                and self.myrequest is not None
            ):
                # The deadlock already resolved itself between the
                # detector's probe and this signal; nothing to give back.
                return
            self.give_backs += 1
            # Return the left fork; the completion of this RETURN_FORK
            # request re-grants the fork to us with priority.
            self.myrequest = yield from api.signal(self._left(RETURN_FORK))
            self.he_owns = ForkState.HIS
        elif event.pattern == RETURN_FORK:
            # Our lent fork is coming home; the returner becomes the
            # recorded next waiter, guaranteeing it priority.
            self.i_own = ForkState.MINE
            self.hisrequest = event.asker
            # Grant it back immediately if we are not hungry ourselves
            # (we reclaimed the fork only to break the cycle).
            if self.myrequest is None:
                self.i_own = ForkState.HIS
                asker, self.hisrequest = self.hisrequest, None
                yield from api.accept_signal(asker)


class DeadlockDetector(ClientProgram):
    """Periodically probes the ring; breaks certain deadlocks (§4.4.3)."""

    def __init__(
        self,
        philosopher_mids: List[int],
        interval_ms: int = 20,
    ) -> None:
        self.phil = list(philosopher_mids)
        self.interval_ms = interval_ms
        self.deadlocks_broken = 0
        self.probes = 0

    def initialization(self, api, parent_mid):
        self.times_up = False
        self.alarm_tid = None
        rng = api.sim.rng.stream("deadlock-detector")
        self._rng = rng
        self.possible_victims = list(range(len(self.phil)))
        self.next_victim = self._pick_victim()
        return
        yield  # pragma: no cover

    def _pick_victim(self) -> int:
        victim = self._rng.choice(self.possible_victims)
        self.possible_victims.remove(victim)
        if not self.possible_victims:
            self.possible_victims = list(range(len(self.phil)))
        return victim

    def handler(self, api, event):
        if event.is_completion and event.asker is not None:
            if event.asker.tid == self.alarm_tid:
                self.times_up = True
        return
        yield  # pragma: no cover

    def _check(self, api, index: int) -> Generator:
        """Ask philosopher ``index`` if it is needful; returns its episode
        TID or None."""
        buf = Buffer(8)
        completion = yield from api.b_get(
            ServerSignature(self.phil[index], CHECK), get=buf
        )
        if completion.status is not RequestStatus.COMPLETED or len(buf.data) < 8:
            return None
        return int.from_bytes(buf.data, "big")

    def task(self, api):
        timeserver = yield from api.discover(ALARM_CLOCK)
        self.alarm_tid = yield from set_alarm(api, timeserver, self.interval_ms)
        while True:
            yield from api.poll(lambda: self.times_up)
            self.times_up = False
            self.alarm_tid = yield from set_alarm(api, timeserver, self.interval_ms)
            self.probes += 1
            first_tid = yield from self._check(api, self.next_victim)
            if first_tid is None:
                continue
            # Walk the ring of successors.
            current = self.next_victim
            broken = True
            while True:
                current = (current + 1) % len(self.phil)
                if current == self.next_victim:
                    break
                tid = yield from self._check(api, current)
                if tid is None:
                    broken = False
                    break
            if not broken:
                continue
            again = yield from self._check(api, self.next_victim)
            if again != first_tid:
                continue
            # Deadlock is certain: every philosopher stayed needful.
            self.deadlocks_broken += 1
            victim = self.next_victim
            self.next_victim = self._pick_victim()
            yield from api.b_signal(ServerSignature(self.phil[victim], GIVE_BACK))
