"""Four-way bounded buffer (§4.4.2).

Two clients are each attached to a similar character device.  Each
client reads from its device and ships the data to the other client,
which buffers it and writes it to its own device.  Four flow-control
loops therefore exist (hence "four-way"):

* device → client: the device emits CTRL-S / CTRL-Q *as data* when its
  internal output buffer fills / drains;
* client → device: the client writes CTRL-S / CTRL-Q to stop/start the
  device producing;
* client → remote client: the blocking EXCHANGE used to ship data
  returns a FULL/CONTINUE status — the producing client stops its device
  when the remote buffer is full (the paper's "interesting use of
  EXCHANGE");
* remote client → client: a RESTART signal reopens the flow.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import ServerSignature
from repro.sodal.queueing import Queue

START_PATTERN: Pattern = make_well_known_pattern(0o420)
BUFFER_DATA: Pattern = make_well_known_pattern(0o421)

CTRL_S = b"\x13"
CTRL_Q = b"\x11"

STATE_CONTINUE = b"\x00"
STATE_FULL = b"\x01"


class Device:
    """A simulated character device with XON/XOFF flow control.

    *Input side* (device → client): emits one item from ``items`` every
    ``produce_interval_us`` while running; the client stops/starts it by
    writing CTRL-S / CTRL-Q.

    *Output side* (client → device): stores written items in an internal
    buffer drained at one item per ``drain_interval_us``; when occupancy
    crosses ``high_water`` the device *emits* CTRL-S on its input side
    (telling the client to stop writing), and CTRL-Q when it drains to
    ``low_water``.

    The device advances lazily: ``poll(now)`` folds in elapsed time.
    """

    def __init__(
        self,
        items: List[bytes],
        produce_interval_us: float = 3_000.0,
        drain_interval_us: float = 4_000.0,
        out_capacity: int = 8,
        high_water: int = 6,
        low_water: int = 2,
    ) -> None:
        self.pending_input: List[bytes] = list(items)
        self.produce_interval_us = produce_interval_us
        self.drain_interval_us = drain_interval_us
        self.out_capacity = out_capacity
        self.high_water = high_water
        self.low_water = low_water

        self.stopped = False           # client wrote CTRL-S
        self.input_ready: Optional[bytes] = None
        self.out_buffer: List[bytes] = []
        self.output: List[bytes] = []  # everything fully drained
        self._flow_notices: List[bytes] = []  # pending ^S/^Q to emit
        self._xoff_sent = False
        self._last_produce = 0.0
        self._last_drain = 0.0
        self.xoff_count = 0

    def poll(self, now: float) -> None:
        # Drain the output buffer.
        while (
            self.out_buffer
            and now - self._last_drain >= self.drain_interval_us
        ):
            self._last_drain = (
                now if self._last_drain == 0.0 else self._last_drain + self.drain_interval_us
            )
            self.output.append(self.out_buffer.pop(0))
        if (
            self._xoff_sent
            and len(self.out_buffer) <= self.low_water
        ):
            self._xoff_sent = False
            self._flow_notices.append(CTRL_Q)
        # Produce input.
        if self.input_ready is None and self._flow_notices:
            self.input_ready = self._flow_notices.pop(0)
        elif (
            self.input_ready is None
            and not self.stopped
            and self.pending_input
            and now - self._last_produce >= self.produce_interval_us
        ):
            self._last_produce = now
            self.input_ready = self.pending_input.pop(0)

    @property
    def data_available(self) -> bool:
        return self.input_ready is not None

    def read(self) -> bytes:
        assert self.input_ready is not None
        item, self.input_ready = self.input_ready, None
        return item

    @property
    def output_ready(self) -> bool:
        return len(self.out_buffer) < self.out_capacity

    def write(self, now: float, item: bytes) -> None:
        if item == CTRL_S:
            self.stopped = True
            return
        if item == CTRL_Q:
            self.stopped = False
            return
        self.out_buffer.append(item)
        if not self._xoff_sent and len(self.out_buffer) >= self.high_water:
            self._xoff_sent = True
            self.xoff_count += 1
            self._flow_notices.append(CTRL_S)

    @property
    def exhausted(self) -> bool:
        return (
            not self.pending_input
            and self.input_ready is None
            and not self.out_buffer
            and not self._flow_notices
        )


class FourWayClient(ClientProgram):
    """One of the two symmetric device-relay clients (§4.4.2)."""

    def __init__(
        self,
        device: Device,
        other_mid: int,
        queue_size: int = 6,
        poll_us: float = 400.0,
    ) -> None:
        self.device = device
        self.other_mid = other_mid
        self.queue_size = queue_size
        self.poll_us = poll_us
        self.remote_stops_sent = 0

    def initialization(self, api, parent_mid):
        self.q: Queue[bytes] = Queue(self.queue_size)
        self.dev_buf_full = False          # device told us CTRL-S
        self.partner_buf_full = False      # remote buffer filled up
        self.partner_buf_empty = False     # remote asked us to restart
        self.remote_client_stopped = False
        yield from api.advertise(START_PATTERN)
        yield from api.advertise(BUFFER_DATA)

    def _remote(self, pattern: Pattern) -> ServerSignature:
        return ServerSignature(self.other_mid, pattern)

    def task(self, api):
        while True:
            self.device.poll(api.now)
            progressed = False

            # READ loop: device has produced something for the far side.
            if not self.partner_buf_full and self.device.data_available:
                data = self.device.read()
                progressed = True
                if data == CTRL_S:
                    self.dev_buf_full = True
                elif data == CTRL_Q:
                    self.dev_buf_full = False
                else:
                    while True:
                        status = Buffer(1)
                        completion = yield from api.b_exchange(
                            self._remote(BUFFER_DATA), put=data, get=status
                        )
                        if completion.status is RequestStatus.REJECTED:
                            # Remote queue momentarily full; retry.
                            yield api.compute(self.poll_us)
                            continue
                        break
                    if (
                        completion.status is RequestStatus.COMPLETED
                        and status.data == STATE_FULL
                    ):
                        self.partner_buf_full = True

            # WRITE loop: device ready to take buffered remote data.
            self.device.poll(api.now)
            if not self.dev_buf_full and self.device.output_ready:
                if self.partner_buf_full:
                    self.partner_buf_full = False
                    self.device.write(api.now, CTRL_S)
                    progressed = True
                elif self.partner_buf_empty:
                    self.partner_buf_empty = False
                    self.device.write(api.now, CTRL_Q)
                    progressed = True
                elif not self.q.is_empty():
                    item = yield from api.dequeue(self.q)
                    self.device.write(api.now, item)
                    progressed = True
                    if self.q.is_empty() and self.remote_client_stopped:
                        self.remote_client_stopped = False
                        yield from api.b_signal(self._remote(START_PATTERN))

            yield api.compute(self.poll_us if not progressed else self.poll_us / 4)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if event.pattern == BUFFER_DATA:
            if self.q.is_full():
                # Should not happen (the FULL status stops the producer),
                # but never drop data: make the sender retry.
                yield from api.reject()
                return
            buf = Buffer(event.put_size)
            if self.q.almost_full():
                # Tell the producer to stop *now* -- the status returns
                # on the same EXCHANGE (§4.4.2's "interesting use").
                self.remote_client_stopped = True
                self.remote_stops_sent += 1
                return_state = STATE_FULL
            else:
                return_state = STATE_CONTINUE
            yield from api.accept_current_exchange(get=buf, put=return_state)
            yield from api.enqueue(self.q, buf.data)
        elif event.pattern == START_PATTERN:
            yield from api.accept_current_signal()
            self.partner_buf_empty = True
