"""Two-way bounded buffer (§4.4.1).

Producers deliver data to a consumer that buffers to match speeds; when
producers outrun it, the consumer exerts backpressure.  Two mechanisms
from the paper:

* the **producer** double-buffers: it fills one buffer while its last
  PUT is still outstanding, so production overlaps delivery;
* the **consumer** buffers on two resources — data buffers (FreePool /
  Produced queues) and requester signatures (Pending queue) — and CLOSEs
  its handler when the signature queue fills (flow control on
  signatures); flow control on data falls out of producers not reissuing
  until their previous PUT is ACCEPTed.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.buffers import Buffer
from repro.core.client import ClientProgram
from repro.core.errors import AcceptStatus, RequestStatus
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.sodal.queueing import Queue

CONSUMER_PATTERN: Pattern = make_well_known_pattern(0o460)


class BufferProducer(ClientProgram):
    """Produces items and ships them with a double-buffering PUT scheme."""

    def __init__(
        self,
        items: Iterable[bytes],
        pattern: Pattern = CONSUMER_PATTERN,
        produce_us: float = 500.0,
    ) -> None:
        self.items = list(items)
        self.pattern = pattern
        self.produce_us = produce_us
        self.delivered = 0
        self.failed = False

    def initialization(self, api, parent_mid):
        self._ready = True  # previous PUT completed
        self._consumer = None
        return
        yield  # pragma: no cover

    def handler(self, api, event):
        if event.is_completion:
            if event.status is not RequestStatus.COMPLETED:
                self.failed = True
            self._ready = True
            self.delivered += 1
        return
        yield  # pragma: no cover

    def task(self, api):
        self._consumer = yield from api.discover(self.pattern)
        for item in self.items:
            # Produce the next item while the previous PUT is in flight:
            # that is what the second buffer buys us.
            yield api.compute(self.produce_us)
            yield from api.poll(lambda: self._ready)
            self._ready = False
            yield from api.put(self._consumer, put=item)
        yield from api.poll(lambda: self._ready)
        yield from api.serve_forever()


class BufferConsumer(ClientProgram):
    """Buffers producer data; processes it at its own pace."""

    def __init__(
        self,
        pattern: Pattern = CONSUMER_PATTERN,
        queue_size: int = 4,
        pending_size: int = 4,
        item_capacity: int = 256,
        consume_us: float = 2_000.0,
        on_item: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        self.pattern = pattern
        self.queue_size = queue_size
        self.pending_size = pending_size
        self.item_capacity = item_capacity
        self.consume_us = consume_us
        self.on_item = on_item
        self.consumed: List[bytes] = []
        self.flow_control_closes = 0

    def initialization(self, api, parent_mid):
        self.produced: Queue[Buffer] = Queue(self.queue_size)
        self.free_pool: Queue[Buffer] = Queue(
            self.queue_size, items=[Buffer(self.item_capacity) for _ in range(self.queue_size)]
        )
        self.pending: Queue = Queue(self.pending_size)
        yield from api.advertise(self.pattern)

    def handler(self, api, event):
        if not event.is_arrival:
            return
        if self.produced.is_full() or self.free_pool.is_empty():
            # Cannot buffer the data now: remember the requester.
            yield from api.enqueue(self.pending, event.asker)
            if self.pending.is_full():
                self.flow_control_closes += 1
                yield from api.close()
        else:
            buf = yield from api.dequeue(self.free_pool)
            status = yield from api.accept_current_put(get=buf)
            if status is AcceptStatus.SUCCESS:
                yield from api.enqueue(self.produced, buf)
            else:
                yield from api.enqueue(self.free_pool, buf)

    def task(self, api):
        while True:
            # Checking emptiness is a single machine word; only the
            # multi-step dequeue/accept sequences need the CLOSE/OPEN
            # critical section, so the handler stays open while idle.
            if self.produced.is_empty() and self.pending.is_empty():
                yield api.idle()
                continue
            yield from api.close()
            work = None
            if not self.produced.is_empty():
                work = yield from api.dequeue(self.produced)
            if not self.pending.is_empty() and not self.free_pool.is_empty():
                buf = yield from api.dequeue(self.free_pool)
                asker = yield from api.dequeue(self.pending)
                status = yield from api.accept_put(asker, get=buf)
                if status is AcceptStatus.SUCCESS:
                    yield from api.enqueue(self.produced, buf)
                else:
                    yield from api.enqueue(self.free_pool, buf)
            yield from api.open()
            if work is not None:
                yield api.compute(self.consume_us)
                self.consumed.append(work.data)
                if self.on_item is not None:
                    self.on_item(work.data)
                yield from api.close()
                yield from api.enqueue(self.free_pool, work)
                yield from api.open()
