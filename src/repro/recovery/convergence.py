"""The chaos self-heal judgment: do supervised services converge?

After the last fault of a schedule clears, a supervised workload must
*return to service* — not merely avoid safety violations.  This module
gives the chaos runner that verdict:

* every supervised role ends the run with a live client whose service
  pattern is advertised again;
* every ``recovery.crash_detected`` is answered by a
  ``recovery.restored`` within :data:`SELF_HEAL_BOUND_US` of the later
  of the detection and the last scheduled fault;
* the supervisor never escalated (gave the service up for dead).

Span termination — the other half of "converged" — is already enforced
by :mod:`repro.chaos.liveness`; together they make the post-fault
contract: *everything pending terminates, and the service comes back.*
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.recovery.detector import FailureDetector
from repro.recovery.supervisor import SupervisorProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.workloads import BuiltWorkload

#: How long after the last fault (or the crash detection, whichever is
#: later) a supervised service may take to be advertised-and-answering
#: again.  Sized like the liveness grace: detection (3 polls of 200ms)
#: + backoff + a full BOOT/LOAD round trip fit comfortably.
SELF_HEAL_BOUND_US = 3_000_000.0

#: Trace categories folded into :func:`recovery_summary` counts.
_SUMMARY_CATEGORIES = {
    "kernel.crash_report": "crash_reports",
    "recovery.crash_detected": "crashes_detected",
    "recovery.reboot": "reboots_issued",
    "recovery.restored": "restored",
    "recovery.escalated": "escalations",
    "recovery.retry": "retries",
    "recovery.maybe": "ambiguous_maybes",
}


def recovery_summary(records) -> Dict[str, object]:
    """Deterministic recovery digest of one run's trace records."""
    detector = FailureDetector().ingest(records)
    counts = {key: 0 for key in sorted(_SUMMARY_CATEGORIES.values())}
    for record in records:
        key = _SUMMARY_CATEGORIES.get(record.category)
        if key is not None:
            counts[key] += 1
    return {
        "counts": counts,
        "false_suspicions": detector.false_suspicions,
        "epochs": {
            str(mid): detector.views[mid].epoch
            for mid in sorted(detector.views)
        },
    }


def _supervisor_patterns(built: "BuiltWorkload") -> Dict[int, int]:
    """service mid → advertised pattern, from live supervisor programs."""
    patterns: Dict[int, int] = {}
    for node in built.net.nodes.values():
        client = node.kernel.client
        if client is None:
            continue
        program = getattr(client, "program", None)
        if isinstance(program, SupervisorProgram):
            for service in program.services:
                patterns[service.mid] = service.pattern
    return patterns


def check_self_heal(
    built: "BuiltWorkload",
    last_fault_us: float,
    bound_us: float = SELF_HEAL_BOUND_US,
) -> List[str]:
    """Post-run convergence check; returns human-readable problems.

    Empty for workloads with no ``supervised`` roles: the self-heal
    contract only binds services something promised to heal.
    """
    supervised = built.spec.supervised
    if not supervised:
        return []
    problems: List[str] = []
    records = built.net.sim.trace.records
    patterns = _supervisor_patterns(built)

    for role_name in supervised:
        mid = built.mid_of(role_name)
        kernel = built.net.nodes[mid].kernel
        client = kernel.client
        if client is None or client.dead:
            problems.append(
                f"supervised role {role_name!r} (mid {mid}) has no live "
                f"client at the horizon"
            )
            continue
        pattern = patterns.get(mid)
        if pattern is not None and not kernel.patterns.matches(pattern):
            problems.append(
                f"supervised role {role_name!r} (mid {mid}) is alive but "
                f"its service pattern is not advertised at the horizon"
            )

    supervised_mids = {built.mid_of(name) for name in supervised}
    restored_times: Dict[int, List[float]] = {}
    for record in records:
        if record.category == "recovery.restored":
            restored_times.setdefault(record["service_mid"], []).append(
                record.time
            )
    for record in records:
        if record.category == "recovery.escalated":
            if record["service_mid"] in supervised_mids:
                problems.append(
                    f"supervisor escalated service mid "
                    f"{record['service_mid']} at t={record.time:.0f}us "
                    f"(restart budget exhausted)"
                )
        elif record.category == "recovery.crash_detected":
            service_mid = record["service_mid"]
            if service_mid not in supervised_mids:
                continue
            deadline = max(record.time, last_fault_us) + bound_us
            healed = any(
                record.time <= t <= deadline
                for t in restored_times.get(service_mid, ())
            )
            if not healed:
                problems.append(
                    f"service mid {service_mid} detected crashed at "
                    f"t={record.time:.0f}us was not restored within "
                    f"{bound_us:.0f}us of the last fault"
                )
    return problems
