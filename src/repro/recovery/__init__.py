"""repro.recovery — crash detection that acts (docs/RECOVERY.md).

Four layers close the loop the paper opens in §3.6 (crash semantics) and
§4 (BOOT/LOAD reserved patterns):

* :mod:`repro.recovery.detector` — a per-node liveness view with
  boot-counter epochs, fed by §3.6 probe outcomes, retransmit
  exhaustion, and boot/DIE/crash trace records;
* :mod:`repro.recovery.supervisor` — an Erlang-style supervisor client
  that watches advertised services and reboots crashed nodes through
  the BOOT/LOAD protocol under a restart policy;
* :mod:`repro.recovery.retry` — a client-side retry shim that re-issues
  failed REQUESTs only when the failure provably never executed,
  surfacing ambiguous failures as MAYBE instead of risking double
  execution;
* :mod:`repro.recovery.convergence` — the chaos self-heal judgment:
  after the last fault clears, supervised services must return to
  advertised-and-answering within a bounded horizon.
"""

from repro.recovery.convergence import (
    SELF_HEAL_BOUND_US,
    check_self_heal,
    recovery_summary,
)
from repro.recovery.detector import FailureDetector, NodeState, NodeView
from repro.recovery.retry import (
    RetryOutcome,
    RetryPolicy,
    retry_request,
)
from repro.recovery.supervisor import (
    RestartPolicy,
    SupervisedService,
    SupervisorProgram,
)

__all__ = [
    "FailureDetector",
    "NodeState",
    "NodeView",
    "RestartPolicy",
    "RetryOutcome",
    "RetryPolicy",
    "SELF_HEAL_BOUND_US",
    "SupervisedService",
    "SupervisorProgram",
    "check_self_heal",
    "recovery_summary",
    "retry_request",
]
