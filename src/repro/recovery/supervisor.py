"""Supervisor facility: watch services, reboot them when they crash.

An Erlang-style supervisor adapted to SODA's primitives: services are
watched through their *advertised patterns* (a DISCOVER that the
service's kernel answers without invoking the handler, §3.4.4), and a
crashed service is brought back through the BOOT/LOAD reserved-pattern
protocol (§3.5.2) — the supervisor is an ordinary client program; the
kernel needs nothing new.

Detection: every poll interval the supervisor DISCOVERs each service's
pattern.  ``misses_to_suspect`` *consecutive* silent polls mark the
service crashed (one lost broadcast round must not trigger a reboot).
A node that answers again on its own — e.g. after a partition heals —
is simply restored; reboots happen only while the boot pattern is
discoverable, which a live client's kernel never allows (§3.5.2).

Restart policy (:class:`RestartPolicy`): exponential backoff between
reboot attempts, a budget of ``max_restarts`` within a sliding
``window_us``, and escalation to permanently-dead when the budget is
exhausted (the supervisor stops trying and traces
``recovery.escalated``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.boot import ProgramImage, boot_pattern_for
from repro.core.client import ClientProgram
from repro.core.errors import SodaError
from repro.core.patterns import Pattern
from repro.core.signatures import ServerSignature


@dataclass(frozen=True)
class RestartPolicy:
    """Budgeted exponential backoff for reboot attempts."""

    #: Maximum successful reboots inside ``window_us`` before escalating.
    max_restarts: int = 5
    window_us: float = 30_000_000.0
    #: Backoff between *attempts* (failed or not): base * factor^n.
    backoff_base_us: float = 150_000.0
    backoff_factor: float = 2.0
    backoff_max_us: float = 2_000_000.0

    def backoff_us(self, attempt: int) -> float:
        delay = self.backoff_base_us * (self.backoff_factor ** attempt)
        return min(delay, self.backoff_max_us)


@dataclass(frozen=True)
class SupervisedService:
    """One watched service: where it lives and how to rebuild it."""

    name: str
    mid: int
    pattern: Pattern
    image: ProgramImage
    machine_type: str = "generic"


@dataclass
class _ServiceRuntime:
    """Mutable supervision state for one service."""

    misses: int = 0
    down: bool = False
    escalated: bool = False
    attempt: int = 0
    next_attempt_us: float = 0.0
    restarts: List[float] = field(default_factory=list)
    crashes_detected: int = 0
    reboots: int = 0
    restored: int = 0


class SupervisorProgram(ClientProgram):
    """A client that keeps its registered services advertised."""

    def __init__(
        self,
        services,
        policy: Optional[RestartPolicy] = None,
        poll_interval_us: float = 200_000.0,
        misses_to_suspect: int = 3,
    ) -> None:
        self.services: List[SupervisedService] = list(services)
        self.policy = policy or RestartPolicy()
        self.poll_interval_us = poll_interval_us
        self.misses_to_suspect = misses_to_suspect
        self.runtime = {svc.name: _ServiceRuntime() for svc in self.services}

    # -- program ------------------------------------------------------

    def task(self, api):
        while True:
            for service in self.services:
                yield from self._poll(api, service)
            yield api.compute(self.poll_interval_us)

    # -- one supervision step -----------------------------------------

    def _poll(self, api, service: SupervisedService):
        run = self.runtime[service.name]
        if run.escalated:
            return
        mids = yield from api.discover_all(service.pattern, max_replies=8)
        if service.mid in mids:
            if run.down:
                run.restored += 1
                api.sim.trace.record(
                    api.now,
                    "recovery.restored",
                    mid=api.my_mid,
                    service_mid=service.mid,
                    service=service.name,
                )
            run.misses = 0
            run.down = False
            run.attempt = 0
            run.next_attempt_us = 0.0
            return
        run.misses += 1
        if run.misses < self.misses_to_suspect:
            return
        if run.misses == self.misses_to_suspect:
            api.sim.trace.record(
                api.now,
                "recovery.suspect",
                mid=api.my_mid,
                service_mid=service.mid,
                service=service.name,
                misses=run.misses,
            )
        if not run.down:
            run.down = True
            run.crashes_detected += 1
            api.sim.trace.record(
                api.now,
                "recovery.crash_detected",
                mid=api.my_mid,
                service_mid=service.mid,
                service=service.name,
            )
        yield from self._try_reboot(api, service, run)

    def _try_reboot(self, api, service: SupervisedService, run: _ServiceRuntime):
        now = api.now
        if now < run.next_attempt_us:
            return
        window_start = now - self.policy.window_us
        run.restarts = [t for t in run.restarts if t >= window_start]
        if len(run.restarts) >= self.policy.max_restarts:
            run.escalated = True
            api.sim.trace.record(
                now,
                "recovery.escalated",
                mid=api.my_mid,
                service_mid=service.mid,
                service=service.name,
                restarts=len(run.restarts),
            )
            return
        run.next_attempt_us = now + self.policy.backoff_us(run.attempt)
        run.attempt += 1
        # Only a bare node advertises its boot pattern (§3.5.2): a
        # DISCOVER miss here means the node is still offline, still
        # occupied, or was already re-booted by someone else.
        boot_pattern = boot_pattern_for(service.machine_type)
        bootable = yield from api.discover_all(boot_pattern, max_replies=8)
        ok = service.mid in bootable
        if ok:
            try:
                yield from api.boot_node(
                    ServerSignature(service.mid, boot_pattern), service.image
                )
            except SodaError:
                ok = False
        api.sim.trace.record(
            api.now,
            "recovery.reboot_attempt",
            mid=api.my_mid,
            service_mid=service.mid,
            service=service.name,
            attempt=run.attempt,
            ok=ok,
        )
        if ok:
            run.reboots += 1
            run.restarts.append(api.now)
            # Not yet restored: that verdict belongs to the next poll
            # that sees the pattern advertised again.
            run.misses = self.misses_to_suspect
            api.sim.trace.record(
                api.now,
                "recovery.reboot",
                mid=api.my_mid,
                service_mid=service.mid,
                service=service.name,
            )
