"""Failure detector: a per-(node, epoch) liveness view (§3.6).

The detector is an observer in the `repro.obs` mold: nothing in the
simulation references it.  It consumes trace records — live via a
tracer sink (:meth:`FailureDetector.install`) or post-hoc via
:meth:`ingest` — and folds them into one :class:`NodeView` per node:

* ``kernel.boot_handler`` — a client started on the node: the boot
  counter (epoch) advances and the incarnation is ALIVE.  A rebooted
  node is a *new* incarnation; state never carries across epochs.
* ``kernel.die`` / ``kernel.crash`` — ground truth: the incarnation is
  DEAD (DIE resets the client, a crash loses the whole kernel).
* ``kernel.crash_report`` — a peer's transaction gave up on the node
  (§3.6 probe death, retransmit exhaustion, NACK): the incarnation
  becomes SUSPECT unless ground truth already marked it dead.
* ``recovery.restored`` — a supervisor confirmed the service answers
  DISCOVER again: corroborates ALIVE.

In the standard failure-detector framing (Aspnes §13) this is an
eventually-perfect detector *within* the simulation: suspicion is
driven by the protocol's own timeouts, and completeness comes from the
ground-truth records the kernel cannot emit spuriously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.tracing import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Network


class NodeState(enum.Enum):
    """Liveness verdict for one (node, epoch) incarnation."""

    UNKNOWN = "unknown"
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class NodeView:
    """Everything the detector believes about one node."""

    mid: int
    #: Boot-counter epoch: 0 before any client ever booted, then +1 per
    #: observed boot handler.  Requests completed against epoch N prove
    #: nothing about epoch N+1.
    epoch: int = 0
    state: NodeState = NodeState.UNKNOWN
    #: Sim time of the last state transition.
    since_us: float = 0.0
    #: Crash reports received about the *current* epoch.
    crash_reports: int = 0
    #: Lifetime totals (across epochs).
    total_crash_reports: int = 0
    boots: int = 0
    deaths: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "mid": self.mid,
            "epoch": self.epoch,
            "state": self.state.value,
            "since_us": self.since_us,
            "crash_reports": self.crash_reports,
            "total_crash_reports": self.total_crash_reports,
            "boots": self.boots,
            "deaths": self.deaths,
        }


class FailureDetector:
    """Aggregates trace records into per-node liveness views."""

    def __init__(self) -> None:
        self.views: Dict[int, NodeView] = {}
        self._net: Optional["Network"] = None
        #: Suspicions raised against a node whose incarnation was, per
        #: ground truth, alive at report time.  Under faults these are
        #: legitimate (partitions look like crashes); a fault-free run
        #: must report zero.
        self.false_suspicions: int = 0

    # -- attachment ----------------------------------------------------

    def install(self, net: "Network") -> "FailureDetector":
        """Observe ``net`` live via a tracer sink (before running it)."""
        if self._net is not None:
            raise RuntimeError("detector already attached to a network")
        self._net = net
        net.sim.trace.add_sink(self.on_record)
        return self

    def uninstall(self) -> None:
        if self._net is not None:
            self._net.sim.trace.remove_sink(self.on_record)
            self._net = None

    def ingest(self, records) -> "FailureDetector":
        """Post-hoc: replay retained trace records."""
        for record in records:
            self.on_record(record)
        return self

    # -- the tracer sink -----------------------------------------------

    def on_record(self, record: TraceRecord) -> None:
        category = record.category
        if category == "kernel.boot_handler":
            view = self._view(record["mid"])
            view.epoch += 1
            view.boots += 1
            view.crash_reports = 0
            self._transition(view, NodeState.ALIVE, record.time)
        elif category in ("kernel.die", "kernel.crash"):
            view = self._view(record["mid"])
            view.deaths += 1
            self._transition(view, NodeState.DEAD, record.time)
        elif category == "kernel.crash_report":
            view = self._view(record["peer"])
            view.crash_reports += 1
            view.total_crash_reports += 1
            if view.state is NodeState.ALIVE:
                self.false_suspicions += 1
            if view.state is not NodeState.DEAD:
                self._transition(view, NodeState.SUSPECT, record.time)
        elif category == "recovery.restored":
            view = self._view(record["service_mid"])
            if view.state is not NodeState.DEAD:
                view.crash_reports = 0
                self._transition(view, NodeState.ALIVE, record.time)

    def _view(self, mid: int) -> NodeView:
        view = self.views.get(mid)
        if view is None:
            view = self.views[mid] = NodeView(mid=mid)
        return view

    @staticmethod
    def _transition(view: NodeView, state: NodeState, now: float) -> None:
        if view.state is not state:
            view.state = state
            view.since_us = now

    # -- queries -------------------------------------------------------

    def view(self, mid: int) -> NodeView:
        return self._view(mid)

    def epoch(self, mid: int) -> int:
        return self._view(mid).epoch

    def state(self, mid: int) -> NodeState:
        return self._view(mid).state

    def alive(self, mid: int) -> bool:
        return self.state(mid) is NodeState.ALIVE

    def suspected(self, mid: int) -> bool:
        return self.state(mid) in (NodeState.SUSPECT, NodeState.DEAD)

    @property
    def total_crash_reports(self) -> int:
        return sum(v.total_crash_reports for v in self.views.values())

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-ready snapshot (sorted by mid)."""
        return {
            "crash_reports": self.total_crash_reports,
            "false_suspicions": self.false_suspicions,
            "nodes": [
                self.views[mid].to_dict() for mid in sorted(self.views)
            ],
        }

    def format_table(self) -> List[str]:
        """Human-readable per-node lines for the CLI."""
        lines = [
            f"{'mid':>4} {'epoch':>6} {'state':>8} {'since(us)':>12}"
            f" {'reports':>8} {'boots':>6} {'deaths':>7}"
        ]
        for mid in sorted(self.views):
            v = self.views[mid]
            lines.append(
                f"{v.mid:>4} {v.epoch:>6} {v.state.value:>8}"
                f" {v.since_us:>12.0f} {v.total_crash_reports:>8}"
                f" {v.boots:>6} {v.deaths:>7}"
            )
        return lines
