"""Client-side retry that preserves at-most-once execution (§3.6.1).

The kernel's crash semantics give a requester three kinds of failure,
and only some of them are safe to retry (the full table lives in
docs/RECOVERY.md):

* **provably unexecuted** (``Completion.not_executed is True``): the
  NACK said UNADVERTISED, the NACK said OVERLOAD (the server kernel
  *shed* the REQUEST before delivery — admission control, see
  docs/TRANSPORT.md — so the handler provably never saw it), the
  REQUEST was still queued behind a dead peer, or a probe answered
  arg=2 ("the previous incarnation died holding it DELIVERED but never
  ACCEPTed").  Re-issuing cannot double execute, and none of these
  take the MAYBE path.
* **ambiguous** (``not_executed is None`` on a CRASHED completion): the
  request may have executed — e.g. the transport ack, not the REQUEST,
  was lost.  Re-issuing is only safe against a *new incarnation* of the
  server: a reboot wiped whatever state the lost handler invocation
  built, so the detector's epoch must advance first.  Without an epoch
  witness the outcome is reported as ``MAYBE``.
* **rejected**: the server said no; retrying is the application's call,
  not ours — reported as ``rejected``.

:func:`retry_request` is a generator helper (``yield from`` it inside a
task) implementing that discipline under a :class:`RetryPolicy` budget,
re-resolving the pattern by DISCOVER before every attempt so a retry
lands on the *current* incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern
from repro.core.signatures import ServerSignature


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, deadline, and backoff for one logical request."""

    max_attempts: int = 5
    deadline_us: float = 5_000_000.0
    backoff_base_us: float = 100_000.0
    backoff_factor: float = 2.0
    backoff_max_us: float = 1_000_000.0

    def backoff_us(self, attempt: int) -> float:
        delay = self.backoff_base_us * (self.backoff_factor ** attempt)
        return min(delay, self.backoff_max_us)


@dataclass
class RetryOutcome:
    """What happened to one logical request, after all retries."""

    #: "completed", "rejected", "maybe" (may have executed exactly once
    #: — never twice), or "failed" (provably never executed).
    status: str
    completion: Optional[object] = None
    attempts: int = 0

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def maybe(self) -> bool:
        return self.status == "maybe"


def retry_request(
    api,
    pattern: Pattern,
    arg: int = 0,
    put=None,
    get=None,
    policy: Optional[RetryPolicy] = None,
    detector=None,
    preferred_mid: Optional[int] = None,
):
    """Issue a REQUEST on ``pattern`` with safe retries; yields a
    :class:`RetryOutcome`.

    ``detector`` (a :class:`repro.recovery.FailureDetector`, optional)
    supplies incarnation epochs: with one attached, an ambiguous failure
    is retried once the target's epoch advances past the one the failed
    attempt spoke to.  Without one, ambiguous failures immediately
    resolve to ``MAYBE``.
    """
    policy = policy or RetryPolicy()
    start_us = api.now
    deadline_us = start_us + policy.deadline_us
    attempts = 0
    saw_ambiguous = False

    def expired() -> bool:
        return api.now >= deadline_us

    while attempts < policy.max_attempts and not expired():
        # Re-resolve the pattern so the attempt lands on the current
        # incarnation (a rebooted server answers DISCOVER again).
        mid = yield from _resolve(
            api, pattern, deadline_us, policy, preferred_mid
        )
        if mid is None:
            break
        epoch_before = detector.epoch(mid) if detector is not None else None
        attempts += 1
        completion = yield from api.b_request(
            ServerSignature(mid, pattern), arg, put=put, get=get
        )
        if completion.status is RequestStatus.COMPLETED:
            return RetryOutcome("completed", completion, attempts)
        if completion.status is RequestStatus.REJECTED:
            return RetryOutcome("rejected", completion, attempts)
        if completion.not_executed is True:
            api.sim.trace.record(
                api.now,
                "recovery.retry",
                mid=api.my_mid,
                target=mid,
                attempt=attempts,
                reason=completion.status.value,
            )
            yield api.compute(policy.backoff_us(attempts - 1))
            continue
        # Ambiguous: the attempt may have executed.  Only a new
        # incarnation makes a re-issue safe.
        saw_ambiguous = True
        if detector is None:
            break
        bumped = yield from _await_epoch_bump(
            api, detector, mid, epoch_before, deadline_us, policy
        )
        if not bumped:
            break
        api.sim.trace.record(
            api.now,
            "recovery.retry",
            mid=api.my_mid,
            target=mid,
            attempt=attempts,
            reason="epoch_advanced",
        )

    if saw_ambiguous:
        api.sim.trace.record(
            api.now,
            "recovery.maybe",
            mid=api.my_mid,
            attempts=attempts,
        )
        return RetryOutcome("maybe", None, attempts)
    return RetryOutcome("failed", None, attempts)


def _resolve(api, pattern, deadline_us, policy, preferred_mid):
    """DISCOVER until some server advertises ``pattern`` (or deadline)."""
    round_ = 0
    while api.now < deadline_us:
        mids = yield from api.discover_all(pattern, max_replies=8)
        if preferred_mid is not None and preferred_mid in mids:
            return preferred_mid
        if mids:
            return mids[0]
        yield api.compute(policy.backoff_us(round_))
        round_ += 1
    return None


def _await_epoch_bump(api, detector, mid, epoch_before, deadline_us, policy):
    """Wait (bounded) for ``mid`` to boot a fresh incarnation."""
    round_ = 0
    while api.now < deadline_us:
        if detector.epoch(mid) > epoch_before:
            return True
        yield api.compute(policy.backoff_us(round_))
        round_ += 1
    return False
