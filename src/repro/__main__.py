"""Command-line entry point: quick demos, tables, and analysis tools.

    python -m repro quickstart        # two-node echo session
    python -m repro tables [--quick]  # the paper's performance tables
    python -m repro breakdown         # overhead-breakdown table
    python -m repro comparison        # SODA vs *MOD
    python -m repro deltat            # Delta-t figure scenarios
    python -m repro lint [paths...]   # sodalint protocol linter
    python -m repro check-trace [workload...]  # trace invariant checker
"""

from __future__ import annotations

import sys


def _quickstart() -> None:
    from repro import Buffer, ClientProgram, Network, make_well_known_pattern

    ECHO = make_well_known_pattern(0o346)

    class Server(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(ECHO)

        def handler(self, api, event):
            if event.is_arrival:
                buf = Buffer(event.put_size)
                yield from api.accept_current_exchange(get=buf, put=b"pong")
                print(f"  server accepted {buf.data!r}")

    class Client(ClientProgram):
        def task(self, api):
            server = yield from api.discover(ECHO)
            reply = Buffer(16)
            completion = yield from api.b_exchange(server, put=b"ping", get=reply)
            print(
                f"  client exchange: {completion.status.value}, "
                f"reply {reply.data!r} at t={api.now/1000:.2f} ms"
            )

    net = Network(seed=7)
    net.add_node(program=Server())
    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=2_000_000.0)
    print(f"  {net.bus.frames_sent} frames on the bus")


def _tables(quick: bool) -> None:
    from repro.bench import (
        WORD_SIZES,
        format_table,
        generate_performance_table,
    )

    sizes = [0, 1, 100, 500, 1000] if quick else WORD_SIZES
    for verb in ("put", "get", "exchange"):
        for pipelined in (False, True):
            rows = generate_performance_table(verb, pipelined, sizes=sizes)
            tag = "pipelined" if pipelined else "non-pipelined"
            print(
                format_table(
                    ["words", "measured ms", "paper ms", "packets"],
                    [(r.words, r.measured_ms, r.paper_ms, r.packets) for r in rows],
                    title=f"{verb.upper()} ({tag})",
                )
            )
            print()


def _breakdown() -> None:
    from repro.bench import format_table, measure_signal_breakdown

    result = measure_signal_breakdown()
    rows = [
        (name, result.measured_ms[name], result.paper_ms[name])
        for name in result.paper_ms
    ]
    rows.append(("TOTAL", result.total_measured_ms, result.total_paper_ms))
    print(
        format_table(
            ["category", "measured ms", "paper ms"], rows,
            title="Breakdown of protocol time (2-packet SIGNAL)",
        )
    )
    print(f"elapsed B_SIGNAL: {result.elapsed_call_ms:.2f} ms")


def _comparison() -> None:
    from repro.bench import format_table, measure_comparison

    rows = measure_comparison()
    print(
        format_table(
            ["scenario", "measured ms", "paper ms"],
            [(r.scenario, r.measured_ms, r.paper_ms) for r in rows],
            title="SODA vs *MOD",
        )
    )


def _deltat() -> None:
    from repro.bench import deltat_scenarios

    for scenario in deltat_scenarios().values():
        print(f"{scenario.name} [{'ok' if scenario.ok else 'FAILED'}]")
        for t_ms, event in scenario.events:
            print(f"    t={t_ms:9.1f} ms  {event}")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    command = argv[0] if argv else "quickstart"
    if command == "quickstart":
        _quickstart()
    elif command == "tables":
        _tables(quick="--quick" in argv)
    elif command == "breakdown":
        _breakdown()
    elif command == "comparison":
        _comparison()
    elif command == "deltat":
        _deltat()
    elif command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])
    elif command == "check-trace":
        from repro.analysis.cli import run_check_trace

        return run_check_trace(argv[1:])
    else:
        print(__doc__)
        return 1 if command not in ("-h", "--help", "help") else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
