"""Command-line entry point: quick demos, tables, and analysis tools.

Run ``python -m repro --help`` for the command list — it is generated
from the ``COMMANDS`` registry at the bottom of this module, so the
help text cannot drift from what actually dispatches.

Most commands accept ``--json PATH`` to also write a machine-readable
``BENCH_*.json``-style snapshot; ``metrics`` additionally accepts
``--jsonl PATH`` for one-metric-per-line output.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, NamedTuple, Optional


def _take_flag_value(argv: List[str], flag: str) -> Optional[str]:
    """Remove ``flag VALUE`` from argv in place; return VALUE or None."""
    if flag not in argv:
        return None
    index = argv.index(flag)
    if index + 1 >= len(argv):
        raise SystemExit(f"{flag} requires a path argument")
    value = argv[index + 1]
    del argv[index : index + 2]
    return value


def _write_payload(json_path: str, kind: str, body, meta=None) -> None:
    from repro.obs.export import emit_snapshot

    emit_snapshot(json_path, kind, body, meta=meta)


def _quickstart() -> None:
    from repro import Buffer, ClientProgram, Network, make_well_known_pattern

    ECHO = make_well_known_pattern(0o346)

    class Server(ClientProgram):
        def initialization(self, api, parent_mid):
            yield from api.advertise(ECHO)

        def handler(self, api, event):
            if event.is_arrival:
                buf = Buffer(event.put_size)
                yield from api.accept_current_exchange(get=buf, put=b"pong")
                print(f"  server accepted {buf.data!r}")

    class Client(ClientProgram):
        def task(self, api):
            server = yield from api.discover(ECHO)
            reply = Buffer(16)
            completion = yield from api.b_exchange(server, put=b"ping", get=reply)
            print(
                f"  client exchange: {completion.status.value}, "
                f"reply {reply.data!r} at t={api.now/1000:.2f} ms"
            )

    net = Network(seed=7)
    net.add_node(program=Server())
    net.add_node(program=Client(), boot_at_us=100.0)
    net.run(until=2_000_000.0)
    print(f"  {net.bus.frames_sent} frames on the bus")


def _tables(quick: bool, json_path: Optional[str] = None) -> None:
    from repro.bench import (
        WORD_SIZES,
        format_table,
        generate_performance_table,
    )

    sizes = [0, 1, 100, 500, 1000] if quick else WORD_SIZES
    body = {}
    for verb in ("put", "get", "exchange"):
        for pipelined in (False, True):
            rows = generate_performance_table(verb, pipelined, sizes=sizes)
            tag = "pipelined" if pipelined else "non-pipelined"
            print(
                format_table(
                    ["words", "measured ms", "paper ms", "packets"],
                    [(r.words, r.measured_ms, r.paper_ms, r.packets) for r in rows],
                    title=f"{verb.upper()} ({tag})",
                )
            )
            print()
            key = "pipelined" if pipelined else "non_pipelined"
            body[f"{verb}.{key}"] = [r.to_dict() for r in rows]
    if json_path:
        _write_payload(
            json_path,
            "performance_tables",
            body,
            meta={"quick": quick, "word_sizes": sizes},
        )


def _breakdown(json_path: Optional[str] = None) -> None:
    from repro.bench import format_table, measure_signal_breakdown

    result = measure_signal_breakdown()
    rows = [
        (name, result.measured_ms[name], result.paper_ms[name])
        for name in result.paper_ms
    ]
    rows.append(("TOTAL", result.total_measured_ms, result.total_paper_ms))
    print(
        format_table(
            ["category", "measured ms", "paper ms"], rows,
            title="Breakdown of protocol time (2-packet SIGNAL)",
        )
    )
    print(f"elapsed B_SIGNAL: {result.elapsed_call_ms:.2f} ms")
    if json_path:
        _write_payload(json_path, "overhead_breakdown", result.to_dict())


def _comparison(json_path: Optional[str] = None) -> None:
    from repro.bench import format_table, measure_comparison

    rows = measure_comparison()
    print(
        format_table(
            ["scenario", "measured ms", "paper ms"],
            [(r.scenario, r.measured_ms, r.paper_ms) for r in rows],
            title="SODA vs *MOD",
        )
    )
    if json_path:
        _write_payload(
            json_path,
            "starmod_comparison",
            {"rows": [r.to_dict() for r in rows]},
        )


def _deltat(json_path: Optional[str] = None) -> None:
    from repro.bench import deltat_scenarios

    scenarios = deltat_scenarios()
    for scenario in scenarios.values():
        print(f"{scenario.name} [{'ok' if scenario.ok else 'FAILED'}]")
        for t_ms, event in scenario.events:
            print(f"    t={t_ms:9.1f} ms  {event}")
    if json_path:
        _write_payload(
            json_path,
            "deltat_scenarios",
            {name: s.to_dict() for name, s in sorted(scenarios.items())},
        )


def _metrics(
    argv: List[str],
    json_path: Optional[str] = None,
    jsonl_path: Optional[str] = None,
) -> int:
    from repro.analysis.workloads import run_workload
    from repro.bench.tables import format_table
    from repro.obs import (
        MetricsHub,
        render_metrics,
        render_span_table,
        write_metrics_jsonl,
    )

    workload = argv[0] if argv else "signal"
    try:
        net = run_workload(workload)
    except KeyError as exc:
        print(exc.args[0])
        return 1
    report = MetricsHub().ingest(net)
    print(render_span_table(report.spans))
    print()
    print(render_metrics(report.snapshot))
    print()
    ledger_rows = [
        (category, us / 1000.0)
        for category, us in sorted(report.ledger.items())
    ]
    ledger_rows.append(("TOTAL", sum(report.ledger.values()) / 1000.0))
    print(
        format_table(
            ["category", "ms"], ledger_rows, title="Cost breakdown"
        )
    )
    if json_path:
        _write_payload(
            json_path,
            "metrics",
            report.to_dict(),
            meta={"workload": workload},
        )
    if jsonl_path:
        write_metrics_jsonl(jsonl_path, report.snapshot)
        print(f"wrote {jsonl_path}")
    return 0


def _chaos(argv: List[str], json_path: Optional[str] = None) -> int:
    from repro.chaos import (
        format_repro,
        make_schedule,
        matrix_payload,
        run_cell,
        run_matrix,
        shrink_scenario,
    )
    from repro.analysis.workloads import get_spec
    from repro.obs.export import write_snapshot

    matrix = "--matrix" in argv
    if matrix:
        argv.remove("--matrix")
    shrink = "--no-shrink" not in argv
    if not shrink:
        argv.remove("--no-shrink")
    causal = "--causal" in argv
    if causal:
        argv.remove("--causal")
    seed_text = _take_flag_value(argv, "--seed")
    seed = int(seed_text) if seed_text else 1
    parallel_text = _take_flag_value(argv, "--parallel")
    parallel = int(parallel_text) if parallel_text else None
    workload = _take_flag_value(argv, "--workload")
    schedule = _take_flag_value(argv, "--schedule")

    workloads = workload.split(",") if workload else None
    schedules = schedule.split(",") if schedule else None
    if not matrix and not workload and not schedule:
        # Quick mode: one representative workload across all schedules.
        workloads = ["echo"]

    def progress(result) -> None:
        status = "ok" if result.ok else "FAIL"
        injected = sum(result.faults.values())
        print(
            f"  {status:4s} {result.workload}/{result.schedule}"
            f"/seed={result.seed}  "
            f"spans={sum(result.spans_by_status.values())} "
            f"faults={injected}"
        )

    results = run_matrix(
        workloads=workloads,
        schedules=schedules,
        seeds=(seed,),
        progress=progress,
        causal=causal,
        parallel=parallel,
    )
    failed = [r for r in results if not r.ok]
    print(
        f"chaos: {len(results) - len(failed)}/{len(results)} cell(s) clean"
    )
    for result in failed:
        for line in (
            result.invariant_violations
            + result.liveness_problems
            + result.selfheal_problems
            + result.causal_problems
        ):
            print(f"  {result.workload}/{result.schedule}: {line}")

    if failed and shrink:
        # Shrink the first failure to a minimal reproducer.
        first = failed[0]
        spec = get_spec(first.workload)
        scenario = make_schedule(first.schedule, spec)

        def still_fails(trial) -> bool:
            return not run_cell(
                first.workload,
                first.schedule,
                first.seed,
                scenario=trial,
                causal=causal,
            ).ok

        minimal = shrink_scenario(scenario, still_fails)
        rerun = run_cell(
            first.workload,
            first.schedule,
            first.seed,
            scenario=minimal,
            causal=causal,
        )
        print()
        print("minimal reproducer (paste into tests/test_chaos.py):")
        print()
        print(
            format_repro(
                first.workload,
                first.seed,
                minimal,
                rerun.invariant_violations
                + rerun.liveness_problems
                + rerun.selfheal_problems
                + rerun.causal_problems,
            )
        )
    if json_path:
        write_snapshot(json_path, matrix_payload(results, seed))
        print(f"wrote {json_path}")
    return 1 if failed else 0


def _transport_bench(
    argv: List[str], json_path: Optional[str] = None
) -> int:
    """Adaptive-vs-static sweep under sustained loss (ISSUE 5)."""
    from repro.bench.tables import format_table
    from repro.bench.transport import run_transport_bench

    seed_text = _take_flag_value(argv, "--seed")
    seeds = (int(seed_text),) if seed_text else (1,)
    parallel_text = _take_flag_value(argv, "--parallel")
    body = run_transport_bench(
        seeds=seeds,
        parallel=int(parallel_text) if parallel_text else None,
    )

    rows = []
    for name in ("static", "adaptive"):
        summary = body[name]["summary"]
        rows.append(
            (
                name,
                summary["spurious_retransmits"],
                summary["retransmits"],
                summary["sheds"],
                summary["completed"],
                round(summary["p50_latency_us"] / 1000.0, 1)
                if summary["p50_latency_us"] is not None
                else "-",
                round(summary["p99_latency_us"] / 1000.0, 1)
                if summary["p99_latency_us"] is not None
                else "-",
            )
        )
    print(
        format_table(
            [
                "policy",
                "spurious",
                "retx",
                "sheds",
                "completed",
                "p50 ms",
                "p99 ms",
            ],
            rows,
            title=f"Transport policies under {body['schedule']}",
        )
    )
    comparison = body["comparison"]
    wins = (
        comparison["adaptive_beats_static_spurious"]
        and comparison["adaptive_beats_static_p99"]
    )
    print(
        f"adaptive beats static on spurious retransmits: "
        f"{comparison['adaptive_beats_static_spurious']}"
    )
    print(
        f"adaptive beats static on p99 latency: "
        f"{comparison['adaptive_beats_static_p99']}"
    )
    if json_path:
        _write_payload(
            json_path, "transport_comparison", body,
            meta={"seeds": list(seeds)},
        )
    return 0 if wins else 1


def _sim_bench(argv: List[str], json_path: Optional[str] = None) -> int:
    """``sim-bench``: wall-clock events/sec through the DES hot path."""
    from repro.bench.sim_bench import run_sim_bench
    from repro.bench.tables import format_table

    repeats_text = _take_flag_value(argv, "--repeats")
    scale_text = _take_flag_value(argv, "--scale")
    body = run_sim_bench(
        repeats=int(repeats_text) if repeats_text else 3,
        scale=float(scale_text) if scale_text else 1.0,
    )

    scenarios = body["scenarios"]
    rows = []
    for name in ("timer_churn", "message_storm", "chaos_replay"):
        cell = scenarios[name]
        rows.append((name, cell["events"], cell["events_per_sec"]))
    trace = scenarios["trace_overhead"]
    rows.append(
        (
            f"{trace['workload']} (traced)",
            trace["traced"]["events"],
            trace["traced"]["events_per_sec"],
        )
    )
    rows.append(
        (
            f"{trace['workload']} (no-trace)",
            trace["no_trace"]["events"],
            trace["no_trace"]["events_per_sec"],
        )
    )
    print(
        format_table(
            ["scenario", "events", "events/sec"],
            rows,
            title="Engine hot path (wall clock; values vary per host)",
        )
    )
    fast_wins = body["comparison"]["no_trace_faster_than_traced"]
    print(f"no-trace fast mode speedup: {trace['fast_mode_speedup']}x")
    print(f"no-trace faster than traced: {fast_wins}")
    if json_path:
        _write_payload(
            json_path,
            "sim_bench",
            body,
            meta={"repeats": body["repeats"]},
        )
    return 0 if fast_wins else 1


def _kv_bench(argv: List[str], json_path: Optional[str] = None) -> int:
    """``kv-bench``: replicated-KV availability/failover (BENCH_kv.json)."""
    from repro.bench.kv import run_kv_bench
    from repro.bench.tables import format_table

    seed_text = _take_flag_value(argv, "--seed")
    body = run_kv_bench(seed=int(seed_text) if seed_text else 1)

    def _ms(value) -> object:
        return "-" if value is None else round(value / 1000.0, 1)

    rows = []
    for name, cell in body["schedules"].items():
        failover = cell["failover"]
        rows.append(
            (
                name,
                f"{cell['ops_definitive']}/{cell['ops_invoked']}",
                f"{cell['availability']:.3f}",
                cell["promotions"],
                _ms(failover["promote_us"]),
                _ms(failover["client_us"]),
                cell["acknowledged_write_loss"],
                len(cell["consistency_problems"]),
            )
        )
    print(
        format_table(
            [
                "schedule",
                "definitive",
                "avail",
                "promoted",
                "failover ms",
                "recover ms",
                "lost acks",
                "violations",
            ],
            rows,
            title=f"Replicated KV under chaos ({body['workload']})",
        )
    )
    comparison = body["comparison"]
    for name, cell in body["schedules"].items():
        for problem in cell["consistency_problems"]:
            print(f"  {name}: {problem}")
    print(f"acknowledged writes lost: {comparison['acknowledged_write_loss']}")
    print(f"failover bounded: {comparison['failover_bounded']}")
    healthy = (
        comparison["all_consistent"]
        and comparison["acknowledged_write_loss"] == 0
        and comparison["failover_bounded"]
    )
    if json_path:
        _write_payload(
            json_path, "kv_bench", body, meta={"seed": body["seed"]}
        )
    return 0 if healthy else 1


def _durability_bench(
    argv: List[str], json_path: Optional[str] = None
) -> int:
    """``durability-bench``: WAL replay / snapshot / fsync tradeoffs."""
    from repro.bench.tables import format_table
    from repro.durability.bench import run_durability_bench

    body = run_durability_bench()

    print(
        format_table(
            ["log entries", "replay us", "wal records"],
            [
                (
                    row["log_entries"],
                    row["replay_disk_us"],
                    row["wal_records_replayed"],
                )
                for row in body["replay"]
            ],
            title="Recovery replay cost vs log length",
        )
    )
    print()
    print(
        format_table(
            ["interval", "snapshots", "runtime us", "replay us"],
            [
                (
                    row["snapshot_interval"],
                    row["snapshots_taken"],
                    row["runtime_disk_us"],
                    row["replay_disk_us"],
                )
                for row in body["snapshot_intervals"]
            ],
            title="Snapshot cadence: runtime cost vs replay saved",
        )
    )
    print()
    print(
        format_table(
            ["policy", "fsyncs", "runtime us"],
            [
                (row["fsync_policy"], row["fsyncs"], row["runtime_disk_us"])
                for row in body["fsync_policies"]
            ],
            title="Fsync policy cost (1000 records)",
        )
    )

    replay_times = [row["replay_disk_us"] for row in body["replay"]]
    policies = {
        row["fsync_policy"]: row for row in body["fsync_policies"]
    }
    sane = (
        replay_times == sorted(replay_times)
        and policies["always"]["runtime_disk_us"]
        > policies["batch"]["runtime_disk_us"]
        >= policies["never"]["runtime_disk_us"]
    )
    print()
    print(f"replay cost grows with log length: {replay_times == sorted(replay_times)}")
    print(f"fsync always > batch >= never: {sane}")
    if json_path:
        _write_payload(json_path, "durability_bench", body)
    return 0 if sane else 1


def _recover(argv: List[str], json_path: Optional[str] = None) -> int:
    """``recover --demo``: one scripted crash/reboot/retry walkthrough."""
    from repro.analysis.workloads import build_workload
    from repro.chaos.scenario import GRACE_US, ClientDie, NodeCrash, Scenario
    from repro.obs import MetricsHub
    from repro.recovery import (
        FailureDetector,
        check_self_heal,
        recovery_summary,
    )

    seed_text = _take_flag_value(argv, "--seed")
    seed = int(seed_text) if seed_text else None

    built = build_workload("supervised", seed=seed)
    detector = FailureDetector().install(built.net)
    hub = MetricsHub().install(built.net)
    scenario = Scenario(
        "recover_demo",
        (
            # DIE mid-exchange: probe-proof (arg=2) safe retry.
            ClientDie(15_000.0, role="server"),
            # Power-fail later: full kernel loss, Delta-t quiet period.
            NodeCrash(3_290_000.0, role="server"),
        ),
    )
    scenario.apply(built)
    horizon = max(built.spec.until_us, scenario.last_action_us + 2 * GRACE_US)
    built.net.run(until=horizon)

    watched = {
        "kernel.die": "server client DIEd",
        "kernel.crash": "server node power-failed",
        "recovery.suspect": "supervisor suspects the service",
        "recovery.crash_detected": "supervisor declares the service crashed",
        "recovery.reboot": "supervisor rebooted the node (BOOT/LOAD)",
        "recovery.restored": "service advertised-and-answering again",
        "recovery.escalated": "supervisor gave the service up",
        "recovery.retry": "client safely re-issued a failed REQUEST",
        "recovery.maybe": "client surfaced an ambiguous failure as MAYBE",
    }
    print("timeline:")
    for record in built.net.sim.trace.records:
        label = watched.get(record.category)
        if label is not None:
            print(f"  t={record.time / 1000.0:9.2f} ms  {label}")

    print()
    print("failure detector:")
    for line in detector.format_table():
        print(f"  {line}")

    summary = recovery_summary(built.net.sim.trace.records)
    print()
    print("recovery counters:")
    for name, value in summary["counts"].items():
        print(f"  recovery.{name:20s} {value}")

    outcomes = built.net.nodes[built.mid_of("client")].kernel.client
    outcomes = outcomes.program.outcomes if outcomes else []
    problems = check_self_heal(built, scenario.last_action_us)
    unsafe = [s for s in outcomes if s not in ("completed", "maybe")]
    print()
    print(f"client outcomes: {outcomes}")
    for problem in problems:
        print(f"  self-heal FAILED: {problem}")
    healed = not problems and not unsafe
    print(f"self-heal: {'converged' if healed else 'FAILED'}")
    if json_path:
        _write_payload(
            json_path,
            "recover_demo",
            {
                "summary": summary,
                "detector": detector.summary(),
                "outcomes": outcomes,
                "selfheal_problems": problems,
                "metrics": hub.report().snapshot,
            },
            meta={"seed": built.spec.seed if seed is None else seed},
        )
    return 0 if healed else 1


def _real(argv: List[str], json_path: Optional[str] = None) -> int:
    """``real <workload>``: the SODA stack over real sockets."""
    from repro.netreal.runner import run_real

    seed_text = _take_flag_value(argv, "--seed")
    policy = _take_flag_value(argv, "--policy") or "adaptive"
    loss_text = _take_flag_value(argv, "--loss")
    keep_traces = _take_flag_value(argv, "--keep-traces")
    durable = _take_flag_value(argv, "--durable")
    power_loss_text = _take_flag_value(argv, "--power-loss-at")
    workload = argv[0] if argv else "pingpong"
    try:
        result = run_real(
            workload,
            seed=int(seed_text) if seed_text else 1,
            policy=policy,
            loss=float(loss_text) if loss_text else 0.0,
            keep_traces=keep_traces,
            durable=durable,
            power_loss_at_us=(
                float(power_loss_text) if power_loss_text else None
            ),
        )
    except KeyError as exc:
        print(exc.args[0])
        return 1
    print(
        f"  spans: {result.spans_completed}/{result.spans_total} completed, "
        f"{result.send_edges} causal send edges, "
        f"{result.unmatched_rx} unmatched rx"
    )
    if result.rtt_p50_us is not None:
        print(
            f"  rtt: p50={result.rtt_p50_us / 1000.0:.2f} ms "
            f"p99={result.rtt_p99_us / 1000.0:.2f} ms; "
            f"retransmits={result.retransmits} "
            f"(spurious={result.spurious_retransmits}), "
            f"impaired losses={result.impaired_losses}"
        )
    if result.kv:
        print(
            f"  kv: {result.kv['ops_definitive']}/"
            f"{result.kv['ops_invoked']} definitive, "
            f"availability={result.kv['availability']:.3f}, "
            f"promotions={result.kv['promotions']}"
        )
    for line in (
        result.invariant_violations
        + result.causal_diagnostics
        + result.runner_problems
        + result.consistency_problems
    ):
        print(f"  PROBLEM: {line}")
    print(f"real: {'ok' if result.ok else 'FAILED'}")
    if json_path:
        _write_payload(
            json_path,
            "real_run",
            result.to_dict(),
            meta={"workload": workload},
        )
    return 0 if result.ok else 1


def _real_bench(argv: List[str], json_path: Optional[str] = None) -> int:
    """``real-bench``: sim-vs-real policy table (BENCH_real.json)."""
    from repro.bench.tables import format_table
    from repro.netreal.bench import run_real_bench

    seed_text = _take_flag_value(argv, "--seed")
    body = run_real_bench(seed=int(seed_text) if seed_text else 1)

    def _ms(value) -> object:
        return "-" if value is None else round(value / 1000.0, 2)

    rows = []
    for backend in ("sim", "real"):
        for policy in ("static", "adaptive"):
            cell = body["backends"][backend][policy]
            rows.append(
                (
                    f"{backend}/{policy}",
                    cell["completed_exchanges"],
                    _ms(cell["latency_p50_us"]),
                    _ms(cell["latency_p99_us"]),
                    _ms(cell["rtt_p50_us"]),
                    cell["retransmits"],
                    _ms(cell["recovery_wait_mean_us"]),
                    round(cell["goodput_exchanges_per_s"] or 0.0, 1),
                )
            )
    print(
        format_table(
            [
                "backend/policy",
                "done",
                "lat p50 ms",
                "lat p99 ms",
                "rtt p50 ms",
                "retx",
                "recover ms",
                "xchg/s",
            ],
            rows,
            title=f"Sim vs real under {body['loss']:.0%} loss",
        )
    )
    comparison = body["comparison"]
    wins = comparison["adaptive_recovers_faster_real"]
    waits = comparison["recovery_wait_mean_us"]
    print(
        f"mean recovery wait per lost frame (real): "
        f"static {_ms(waits['static'])} ms, "
        f"adaptive {_ms(waits['adaptive'])} ms"
    )
    print(f"adaptive recovers faster than static (real): {wins}")
    if json_path:
        _write_payload(
            json_path,
            "real_bench",
            body,
            meta={"seed": body["seed"]},
        )
    return 0 if wins else 1


def _lint(argv: List[str], json_path: Optional[str] = None) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(argv, json_path=json_path)


def _check_trace(argv: List[str], json_path: Optional[str] = None) -> int:
    from repro.analysis.cli import run_check_trace

    return run_check_trace(argv, json_path=json_path)


def _causal(argv: List[str], json_path: Optional[str] = None) -> int:
    from repro.analysis.cli import run_causal

    return run_causal(argv, json_path=json_path)


def _causal_bench(argv: List[str], json_path: Optional[str] = None) -> int:
    from repro.analysis.cli import run_causal_bench_cli

    return run_causal_bench_cli(argv, json_path=json_path)


def _real_node(argv: List[str]) -> int:
    from repro.netreal.runner import run_real_node

    return run_real_node(argv)


# ---------------------------------------------------------------------------
# Command registry: every subcommand lives here, and ``--help`` renders
# from here — adding a command without help text is impossible.


class Command(NamedTuple):
    run: Callable[[List[str], Optional[str], Optional[str]], object]
    usage: str
    description: str


COMMANDS: Dict[str, Command] = {
    "quickstart": Command(
        lambda argv, j, jl: _quickstart(),
        "quickstart",
        "two-node echo session",
    ),
    "tables": Command(
        lambda argv, j, jl: _tables(quick="--quick" in argv, json_path=j),
        "tables [--quick]",
        "the paper's performance tables",
    ),
    "breakdown": Command(
        lambda argv, j, jl: _breakdown(json_path=j),
        "breakdown",
        "overhead-breakdown table",
    ),
    "comparison": Command(
        lambda argv, j, jl: _comparison(json_path=j),
        "comparison",
        "SODA vs *MOD",
    ),
    "deltat": Command(
        lambda argv, j, jl: _deltat(json_path=j),
        "deltat",
        "Delta-t figure scenarios",
    ),
    "metrics": Command(
        lambda argv, j, jl: _metrics(argv, json_path=j, jsonl_path=jl),
        "metrics [workload] [--jsonl PATH]",
        "observability report (repro.obs)",
    ),
    "lint": Command(
        lambda argv, j, jl: _lint(argv, json_path=j),
        "lint [paths...]",
        "sodalint protocol linter",
    ),
    "check-trace": Command(
        lambda argv, j, jl: _check_trace(argv, json_path=j),
        "check-trace [--streaming] [workload...]",
        "trace invariant checker (batch, or live incremental with "
        "--streaming)",
    ),
    "causal": Command(
        lambda argv, j, jl: _causal(argv, json_path=j),
        "causal [workload...]",
        "vector-clock happens-before, race + deadlock detection "
        "(SODA010-SODA013)",
    ),
    "causal-bench": Command(
        lambda argv, j, jl: _causal_bench(argv, json_path=j),
        "causal-bench",
        "batch vs streaming checker cost",
    ),
    "chaos": Command(
        lambda argv, j, jl: _chaos(argv, json_path=j),
        "chaos [--matrix] [--seed N] [--workload W[,W...]] "
        "[--schedule S[,S...]] [--no-shrink] [--causal] [--parallel N]",
        "fault-schedule sweep (repro.chaos); --parallel farms cells "
        "out to N worker processes (byte-identical output, docs/SIM.md)",
    ),
    "transport-bench": Command(
        lambda argv, j, jl: _transport_bench(argv, json_path=j),
        "transport-bench [--seed N] [--parallel N]",
        "adaptive-vs-static comparison under sustained_loss (ISSUE 5)",
    ),
    "sim-bench": Command(
        lambda argv, j, jl: _sim_bench(argv, json_path=j),
        "sim-bench [--repeats R] [--scale F]",
        "raw engine events/sec benchmark (BENCH_sim.json; docs/SIM.md)",
    ),
    "kv-bench": Command(
        lambda argv, j, jl: _kv_bench(argv, json_path=j),
        "kv-bench [--seed N]",
        "replicated-KV availability and failover-time benchmark "
        "(BENCH_kv.json; docs/REPLICATION.md)",
    ),
    "durability-bench": Command(
        lambda argv, j, jl: _durability_bench(argv, json_path=j),
        "durability-bench",
        "WAL replay, snapshot-interval, and fsync-policy costs "
        "(BENCH_durability.json; docs/DURABILITY.md)",
    ),
    "recover": Command(
        lambda argv, j, jl: _recover(argv, json_path=j),
        "recover --demo",
        "crash -> detect -> reboot -> retry walkthrough (repro.recovery)",
    ),
    "real": Command(
        lambda argv, j, jl: _real(argv, json_path=j),
        "real <workload> [--seed N] [--policy P] [--loss F] "
        "[--durable DIR] [--power-loss-at US] [--keep-traces DIR]",
        "run over real UDP sockets, one OS process per node "
        "(repro.netreal)",
    ),
    "real-node": Command(
        lambda argv, j, jl: _real_node(argv),
        "real-node (internal)",
        "child-process entry for `real`: one node over one socket",
    ),
    "real-bench": Command(
        lambda argv, j, jl: _real_bench(argv, json_path=j),
        "real-bench [--seed N]",
        "sim-vs-real policy comparison under injected loss",
    ),
}


def _render_help() -> str:
    lines = [
        "usage: python -m repro <command> [--json PATH] [args...]",
        "",
        "commands:",
    ]
    for name, command in COMMANDS.items():
        lines.append(f"  python -m repro {command.usage}")
        lines.append(f"      {command.description}")
    lines.append("")
    lines.append(
        "Most commands accept --json PATH to also write a "
        "machine-readable BENCH_*.json-style snapshot."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = _take_flag_value(argv, "--json")
    jsonl_path = _take_flag_value(argv, "--jsonl")
    command = argv[0] if argv else "quickstart"
    if command in ("-h", "--help", "help"):
        print(_render_help())
        return 0
    spec = COMMANDS.get(command)
    if spec is None:
        print(_render_help())
        return 1
    result = spec.run(argv[1:], json_path, jsonl_path)
    return 0 if result is None else int(result)  # type: ignore[call-overload]


if __name__ == "__main__":
    raise SystemExit(main())
