"""Reliable multicast as a library (§6.17.1).

"In SODA, if a client wishes to send a message reliably to several sites
in a group, it must issue a separate REQUEST to each site."  This module
does exactly that, pipelining up to MAXREQUESTS sends and reporting
per-member outcomes; plus a small process-group helper built on shared
patterns and DISCOVER (§6.12's "support of process groups").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence

from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern
from repro.core.signatures import ServerSignature


@dataclass
class MulticastResult:
    """Per-member outcome of one multicast."""

    statuses: Dict[int, RequestStatus] = field(default_factory=dict)

    @property
    def delivered_to(self) -> List[int]:
        return sorted(
            mid
            for mid, status in self.statuses.items()
            if status is RequestStatus.COMPLETED
        )

    @property
    def failed_members(self) -> List[int]:
        return sorted(
            mid
            for mid, status in self.statuses.items()
            if status is not RequestStatus.COMPLETED
        )

    @property
    def all_delivered(self) -> bool:
        return not self.failed_members


def multicast_put(
    api,
    members: Sequence[ServerSignature],
    data,
    arg: int = 0,
) -> Generator:
    """Reliably PUT ``data`` to every member; returns a MulticastResult.

    Sends are pipelined in batches bounded by the kernel's MAXREQUESTS
    so several transfers overlap on the wire.
    """
    result = MulticastResult()
    window = max(1, api.kernel.config.max_requests)
    members = list(members)
    for start in range(0, len(members), window):
        batch = members[start : start + window]
        watched = []
        for member in batch:
            tid = yield from api.request(member, arg=arg, put=data)
            watched.append((member, tid, api.watch_completion(tid)))
        for member, tid, future in watched:
            completion = yield from api.wait_completion(tid, future)
            result.statuses[member.mid] = completion.status
    return result


class ProcessGroup:
    """A named group of cooperating clients (§6.12).

    All members ADVERTISE the same group pattern (typically minted once
    with GETUNIQUEID and distributed by the group creator); anyone can
    then enumerate the group with DISCOVER and multicast to it.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern

    def join(self, api) -> Generator:
        yield from api.advertise(self.pattern)

    def leave(self, api) -> Generator:
        yield from api.unadvertise(self.pattern)

    def members(self, api, max_members: int = 16) -> Generator:
        mids = yield from api.discover_all(self.pattern, max_replies=max_members)
        return [ServerSignature(mid, self.pattern) for mid in mids]

    def multicast(self, api, data, arg: int = 0, max_members: int = 16) -> Generator:
        members = yield from self.members(api, max_members=max_members)
        result = yield from multicast_put(api, members, data, arg=arg)
        return result
