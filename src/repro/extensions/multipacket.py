"""Multipacket transfers: blocks larger than the message maximum (§6.17.4).

"Arbitrarily long transmissions are supportable by higher-level
protocols that packetize and reassemble large blocks of data."  The
sender splits a block into chunks of at most the kernel's fixed message
maximum, tagging each REQUEST argument with ``(block_id << 16) | index``
and using the buffer sizes to delimit; the receiver reassembles per
(sender, block).  Per-sender ordering (§3.3.2) means no sequence gaps
within a block, so reassembly is a simple append.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Tuple

from repro.core.buffers import Buffer
from repro.core.errors import AcceptStatus, RequestStatus, SodaError
from repro.core.signatures import ServerSignature

#: Argument encoding: high bits block id, low 12 bits chunk index, top
#: bit of the index field marks the final chunk.
_INDEX_BITS = 12
_FINAL_FLAG = 1 << _INDEX_BITS


def _encode_arg(block_id: int, index: int, final: bool) -> int:
    if index >= _FINAL_FLAG:
        raise SodaError("block too long for the chunk-index encoding")
    return (block_id << (_INDEX_BITS + 1)) | index | (_FINAL_FLAG if final else 0)


def _decode_arg(arg: int) -> Tuple[int, int, bool]:
    block_id = arg >> (_INDEX_BITS + 1)
    index = arg & (_FINAL_FLAG - 1)
    final = bool(arg & _FINAL_FLAG)
    return block_id, index, final


def put_block(
    api,
    server: ServerSignature,
    data: bytes,
    block_id: int = 1,
    chunk_bytes: Optional[int] = None,
) -> Generator:
    """Reliably ship a block of any size; returns the number of chunks."""
    limit = api.kernel.config.max_message_bytes
    chunk_bytes = min(chunk_bytes or limit, limit)
    if chunk_bytes <= 0:
        raise SodaError("chunk size must be positive")
    chunks = [
        data[offset : offset + chunk_bytes]
        for offset in range(0, len(data), chunk_bytes)
    ] or [b""]
    for index, chunk in enumerate(chunks):
        final = index == len(chunks) - 1
        completion = yield from api.b_put(
            server, arg=_encode_arg(block_id, index, final), put=chunk
        )
        if completion.status is not RequestStatus.COMPLETED:
            raise SodaError(
                f"block transfer failed at chunk {index}: "
                f"{completion.status.value}"
            )
    return len(chunks)


@dataclass
class _PartialBlock:
    chunks: list = field(default_factory=list)
    next_index: int = 0


class BlockAssembler:
    """Server-side reassembly of multipacket blocks.

    Call :meth:`handle_arrival` from the handler for arrivals on the
    block pattern; completed blocks land in :attr:`completed` as
    ``(sender_mid, block_id, data)`` tuples.
    """

    def __init__(self, max_chunk: int = 65536) -> None:
        self.max_chunk = max_chunk
        self._partial: Dict[Tuple[int, int], _PartialBlock] = {}
        self.completed: list = []

    def handle_arrival(self, api, event) -> Generator:
        block_id, index, final = _decode_arg(event.arg)
        key = (event.asker.mid, block_id)
        partial = self._partial.setdefault(key, _PartialBlock())
        if index != partial.next_index:
            # Out-of-sequence chunk: a stale retry of a finished block or
            # a protocol error; reject it.
            yield from api.reject()
            return
        buf = Buffer(min(event.put_size, self.max_chunk))
        status = yield from api.accept_current_put(get=buf)
        if status is not AcceptStatus.SUCCESS:
            return
        partial.chunks.append(buf.data)
        partial.next_index += 1
        if final:
            del self._partial[key]
            self.completed.append(
                (event.asker.mid, block_id, b"".join(partial.chunks))
            )


class BlockReceiverMixin:
    """Drop-in program mixin: advertise a pattern, collect blocks.

    Subclasses set ``block_pattern`` and may override
    :meth:`on_block(sender_mid, block_id, data)`.
    """

    block_pattern = None

    def initialization(self, api, parent_mid):
        self.assembler = BlockAssembler()
        yield from api.advertise(self.block_pattern)

    def handler(self, api, event):
        if event.is_arrival and event.pattern == self.block_pattern:
            before = len(self.assembler.completed)
            yield from self.assembler.handle_arrival(api, event)
            for entry in self.assembler.completed[before:]:
                self.on_block(*entry)

    def on_block(self, sender_mid: int, block_id: int, data: bytes) -> None:
        """Override to consume completed blocks."""
