"""Bidding: load-aware server selection (§6.17.5).

"DISCOVER returns a list of potential servers however and there is no
way to discriminate among the members of the list.  By allowing the
client to ADVERTISE values which are returned as part of a broadcast
REQUEST along with MIDS, a server could indicate how busy it is."

SODA's kernel does not carry bid values (we keep it faithful), so this
library realizes bidding one level up: bidding servers also answer a
one-word GET on a *bid pattern* with their current load; the selector
DISCOVERs the service pattern, collects bids in parallel-ish fashion,
and picks the least-loaded member.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Tuple

from repro.core.buffers import Buffer
from repro.core.errors import RequestStatus
from repro.core.patterns import Pattern, make_well_known_pattern
from repro.core.signatures import ServerSignature

#: Well-known entry point where bidding servers report their load.
BID_PATTERN: Pattern = make_well_known_pattern(0o210)


class BiddingServerMixin:
    """Program mixin: advertise a service and answer load queries.

    Subclasses set ``service_pattern`` and keep ``self.current_load``
    up to date (any non-negative int; lower = less busy).
    """

    service_pattern = None
    current_load = 0

    def initialization(self, api, parent_mid):
        yield from api.advertise(self.service_pattern)
        yield from api.advertise(BID_PATTERN)

    def handler(self, api, event):
        if event.is_arrival and event.pattern == BID_PATTERN:
            yield from api.accept_current_get(
                put=struct.pack(">I", max(0, int(self.current_load)))
            )
            return
        handled = yield from self.service_handler(api, event)

    def service_handler(self, api, event) -> Generator:
        """Override: handle arrivals on the service pattern."""
        return False
        yield  # pragma: no cover


def collect_bids(
    api, pattern: Pattern, max_members: int = 16
) -> Generator:
    """DISCOVER + per-member load query; returns [(load, mid), ...]."""
    mids = yield from api.discover_all(pattern, max_replies=max_members)
    bids: List[Tuple[int, int]] = []
    for mid in mids:
        buf = Buffer(4)
        completion = yield from api.b_get(
            ServerSignature(mid, BID_PATTERN), get=buf
        )
        if completion.status is RequestStatus.COMPLETED and len(buf.data) == 4:
            bids.append((struct.unpack(">I", buf.data)[0], mid))
        # A member that answers no bid is simply not considered.
    return sorted(bids)


def discover_least_loaded(
    api, pattern: Pattern, max_members: int = 16
) -> Generator:
    """Pick the least-loaded server advertising ``pattern``.

    Returns a ServerSignature, or None when nothing answered.
    """
    bids = yield from collect_bids(api, pattern, max_members=max_members)
    if not bids:
        return None
    _load, mid = bids[0]
    return ServerSignature(mid, pattern)
