"""Client helpers for kernel-serviced remote memory reference (§6.17.2).

With ``KernelConfig(kernel_rmr=True)``, a client registers a memory
region (``api.kernel.client_register_rmr_memory(buf)``) and the kernel
itself answers PEEK/POKE REQUESTs on the reserved RMR pattern — no
handler invocation, no client overhead at the server.  CLOSE gates
access (the paper's proposed synchronization); a reference arriving
while CLOSEd is REJECTed and retried here.

Compare with :mod:`repro.facilities.rmr`, the pure-library version the
paper actually recommends; ``benchmarks/test_ablation_kernel_rmr.py``
measures the difference.
"""

from __future__ import annotations

from typing import Generator

from repro.core.boot import KERNEL_RMR_PATTERN
from repro.core.buffers import Buffer
from repro.core.errors import RequestStatus, SodaError
from repro.core.signatures import ServerSignature


def _rmr_sig(mid: int) -> ServerSignature:
    return ServerSignature(mid, KERNEL_RMR_PATTERN)


def kernel_peek(
    api, mid: int, address: int, size: int, retries: int = 20
) -> Generator:
    """Read remote memory through the kernel RMR handler."""
    for _attempt in range(retries):
        buf = Buffer(size)
        completion = yield from api.b_get(_rmr_sig(mid), arg=address, get=buf)
        if completion.status is RequestStatus.COMPLETED:
            return buf.data
        if completion.status is RequestStatus.REJECTED:
            yield api.compute(2_000)  # CLOSEd or bad address; retry
            continue
        break
    raise SodaError(f"kernel peek failed: {completion.status.value}")


def kernel_poke(
    api, mid: int, address: int, value, retries: int = 20
) -> Generator:
    """Write remote memory through the kernel RMR handler."""
    for _attempt in range(retries):
        completion = yield from api.b_put(_rmr_sig(mid), arg=address, put=value)
        if completion.status is RequestStatus.COMPLETED:
            return completion.taken_put
        if completion.status is RequestStatus.REJECTED:
            yield api.compute(2_000)
            continue
        break
    raise SodaError(f"kernel poke failed: {completion.status.value}")
