"""The primitives SODA deliberately left out (§6.17), as extensions.

The paper argues each of these belongs in library code or, where kernel
support would pay, sketches how it would look.  We provide both flavors
where the paper does:

* :mod:`repro.extensions.multicast` — reliable multicast to a process
  group as a library of individual reliable REQUESTs (§6.17.1);
* :mod:`repro.extensions.kernel_rmr` — client helpers for the
  kernel-serviced PEEK/POKE handler (§6.17.2; enable with
  ``KernelConfig(kernel_rmr=True)``);
* :mod:`repro.extensions.multipacket` — arbitrarily long transfers
  packetized and reassembled above the fixed message maximum (§6.17.4);
* :mod:`repro.extensions.bidding` — load-aware server selection over
  DISCOVER (§6.17.5).
"""

from repro.extensions.bidding import BiddingServerMixin, discover_least_loaded
from repro.extensions.kernel_rmr import kernel_peek, kernel_poke
from repro.extensions.multicast import ProcessGroup, multicast_put
from repro.extensions.multipacket import (
    BlockAssembler,
    BlockReceiverMixin,
    put_block,
)

__all__ = [
    "BiddingServerMixin",
    "BlockAssembler",
    "BlockReceiverMixin",
    "ProcessGroup",
    "discover_least_loaded",
    "kernel_peek",
    "kernel_poke",
    "multicast_put",
    "put_block",
]
