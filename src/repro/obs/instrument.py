"""Wiring the metrics registry into a running (or finished) network.

:class:`MetricsHub` has two modes, producing identical results for the
same run:

* **live** — :meth:`install` registers a tracer sink, so every record
  feeds the registry and span builder as it is emitted (works even with
  ``keep_records=False``);
* **post-hoc** — :meth:`ingest` replays a finished network's retained
  trace records through the same code path.

Either way, :meth:`report` pull-collects the always-on layer counters
(bus busy time and queue depth, NIC frame/byte counters, Delta-t record
expiries, the cost ledger) and returns an :class:`ObsReport`.

Nothing in the simulation references this module: with no hub attached,
the only per-packet work is the counters the layers already kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanBuilder, TransactionSpan, span_statistics
from repro.sim.tracing import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import Network


@dataclass
class ObsReport:
    """The outcome of observing one run."""

    snapshot: Dict[str, Dict[str, Any]]
    spans: List[TransactionSpan] = field(default_factory=list)
    ledger: Dict[str, float] = field(default_factory=dict)

    @property
    def completed_spans(self) -> List[TransactionSpan]:
        return [span for span in self.spans if span.completed]

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready view of the whole report."""
        return {
            "metrics": self.snapshot,
            "cost_ledger_us": {
                key: self.ledger[key] for key in sorted(self.ledger)
            },
            "spans": {
                "total": len(self.spans),
                "completed": len(self.completed_spans),
                "by_status": self._count_by("status"),
                "by_verb": self._count_by("verb"),
            },
        }

    def _count_by(self, attr: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self.spans:
            key = getattr(span, attr)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))


class MetricsHub:
    """Collects registry metrics and spans for one network run."""

    #: Always-visible recovery counters (docs/RECOVERY.md): registered
    #: up front so fault-free runs report them as explicit zeros.
    RECOVERY_COUNTERS = (
        "recovery.crash_reports",
        "recovery.crashes_detected",
        "recovery.reboots_issued",
        "recovery.retries",
        "recovery.ambiguous_maybes",
        "recovery.restored",
        "recovery.escalations",
    )

    #: Always-visible transport/overload counters (ISSUE 5): registered
    #: up front so a clean adaptive run reports explicit zeros — the
    #: bench comparison needs "0 spurious retransmits" as a value, not
    #: a missing key.
    TRANSPORT_COUNTERS = (
        "transport.spurious_retransmits",
        "transport.resyncs",
        "kernel.shed",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.spans = SpanBuilder()
        self._net: Optional["Network"] = None
        self._ledger: Dict[str, float] = {}
        self._handler_start: Dict[int, float] = {}
        for name in self.RECOVERY_COUNTERS + self.TRANSPORT_COUNTERS:
            self.registry.counter(name)

    # -- attachment --------------------------------------------------------

    def install(self, net: "Network") -> "MetricsHub":
        """Observe ``net`` live via a tracer sink (before running it)."""
        if self._net is not None:
            raise RuntimeError("hub already attached to a network")
        self._net = net
        net.sim.trace.add_sink(self.on_record)
        return self

    def uninstall(self) -> None:
        if self._net is not None:
            self._net.sim.trace.remove_sink(self.on_record)
            self._net = None

    def ingest(self, net: "Network") -> ObsReport:
        """Post-hoc: replay a finished run's retained trace records."""
        if self._net is None:
            self._net = net
        for record in net.sim.trace.records:
            self.on_record(record)
        return self.report()

    def ingest_records(
        self,
        records: Iterable[TraceRecord],
        ledger: Optional[Dict[str, float]] = None,
    ) -> ObsReport:
        """Post-hoc from bare records — no live network required.

        The real runner's merged multi-process traces come through
        here: the record-driven metrics and spans are built exactly as
        in :meth:`ingest`, while the pull-collected layer gauges (which
        need live node objects) are skipped.  ``ledger`` optionally
        supplies the pooled cost-ledger snapshot for the report.
        """
        if ledger is not None:
            self._ledger = dict(ledger)
        for record in records:
            self.on_record(record)
        return self.report()

    # -- the tracer sink ---------------------------------------------------

    def on_record(self, record: TraceRecord) -> None:
        self.spans.feed(record)
        category = record.category
        reg = self.registry
        if category == "kernel.tx":
            reg.counter("kernel.tx_packets").inc()
            reg.counter(f"node.{record['mid']}.tx_packets").inc()
        elif category == "kernel.rx":
            reg.counter("kernel.rx_packets").inc()
            reg.counter(f"node.{record['mid']}.rx_packets").inc()
        elif category == "conn.acked":
            reg.histogram("transport.rtt_us").observe(record["rtt_us"])
            reg.histogram(
                f"transport.rtt_us.{record['kind']}"
            ).observe(record["rtt_us"])
            attempts = record.get("attempts")
            if attempts is not None:
                reg.histogram("transport.attempts_to_ack").observe(attempts)
                reg.histogram(
                    f"transport.attempts_to_ack.{record['kind']}"
                ).observe(attempts)
                policy = record.get("policy")
                if policy is not None:
                    reg.histogram(
                        f"transport.attempts_to_ack.policy.{policy}"
                    ).observe(attempts)
        elif category == "conn.spurious_retransmit":
            reg.counter("transport.spurious_retransmits").inc()
            reg.counter(
                f"transport.spurious_retransmits.{record['kind']}"
            ).inc()
        elif category == "conn.resync":
            reg.counter("transport.resyncs").inc()
        elif category == "kernel.shed":
            reg.counter("kernel.shed").inc()
        elif category == "conn.retransmit":
            reg.counter("transport.retransmits").inc()
            reg.counter(
                f"transport.retransmits.{record['kind']}"
            ).inc()
        elif category == "conn.busy_retry":
            reg.counter("transport.busy_retries").inc()
        elif category == "conn.peer_dead":
            reg.counter("transport.peers_declared_dead").inc()
        elif category == "kernel.busy_nack":
            reg.counter("kernel.busy_nacks").inc()
        elif category == "kernel.hold":
            reg.counter("kernel.held_requests").inc()
        elif category == "kernel.request":
            reg.counter("kernel.requests").inc()
        elif category == "kernel.complete":
            reg.counter("kernel.completions").inc()
        elif category == "kernel.cancelled":
            reg.counter("kernel.cancels").inc()
        elif category == "kernel.interrupt":
            reg.counter("kernel.interrupts").inc()
            reg.counter(
                f"kernel.interrupts.{record['reason']}"
            ).inc()
            self._handler_start[record["mid"]] = record.time
        elif category == "kernel.endhandler":
            start = self._handler_start.pop(record["mid"], None)
            if start is not None:
                reg.histogram("kernel.handler_occupancy_us").observe(
                    record.time - start
                )
        elif category == "net.drop":
            reg.counter("bus.frames_dropped").inc()
        elif category == "kernel.crash_report":
            reg.counter("recovery.crash_reports").inc()
            reg.counter(f"recovery.crash_reports.{record['reason']}").inc()
        elif category == "recovery.suspect":
            reg.counter("recovery.suspicions").inc()
        elif category == "recovery.crash_detected":
            reg.counter("recovery.crashes_detected").inc()
        elif category == "recovery.reboot":
            reg.counter("recovery.reboots_issued").inc()
        elif category == "recovery.reboot_attempt":
            reg.counter("recovery.reboot_attempts").inc()
        elif category == "recovery.restored":
            reg.counter("recovery.restored").inc()
        elif category == "recovery.escalated":
            reg.counter("recovery.escalations").inc()
        elif category == "recovery.retry":
            reg.counter("recovery.retries").inc()
        elif category == "recovery.maybe":
            reg.counter("recovery.ambiguous_maybes").inc()

    # -- causal analysis ---------------------------------------------------

    def note_analysis(self, checker, order=None) -> None:
        """Record one causal-analysis pass (``python -m repro causal``).

        ``checker`` is a finished
        :class:`~repro.analysis.causal.streaming.IncrementalChecker`;
        ``order`` the :class:`~repro.analysis.causal.clocks.CausalOrder`
        if one was built.  Registered lazily — runs that never analyze
        keep their metric snapshots byte-identical to before the
        analysis engine existed.
        """
        reg = self.registry
        reg.counter("analysis.records_checked").inc(
            checker.records_checked
        )
        reg.counter("analysis.violations").inc(len(checker.violations))
        peak = reg.gauge("analysis.peak_open_state")
        if checker.peak_open_state > peak.value:
            peak.set(checker.peak_open_state)
        if order is not None:
            reg.counter("analysis.clocks_allocated").inc(
                order.clocks_allocated
            )
            reg.counter("analysis.send_edges").inc(order.send_edges)
            reg.counter("analysis.unmatched_rx").inc(order.unmatched_rx)

    # -- pull collection ---------------------------------------------------

    def collect(self) -> None:
        """Sample the always-on layer counters into gauges.

        A no-op without an attached network (records-only ingest):
        there are no live layer objects to pull from.
        """
        net = self._net
        if net is None:
            return
        reg = self.registry
        now = net.sim.now
        bus = net.bus
        reg.gauge("bus.utilization").set(bus.utilization(now))
        reg.gauge("bus.busy_time_us").set(bus.busy_time_us)
        reg.gauge("bus.frames_sent").set(bus.frames_sent)
        reg.gauge("bus.bytes_sent").set(bus.bytes_sent)
        reg.gauge("bus.peak_queue_depth").set(bus.peak_queue_depth)
        expiries = 0
        synchronizations = 0
        for mid in sorted(net.nodes):
            node = net.nodes[mid]
            nic = node.nic
            reg.gauge(f"node.{mid}.frames_sent").set(nic.frames_sent)
            reg.gauge(f"node.{mid}.frames_received").set(nic.frames_received)
            reg.gauge(f"node.{mid}.bytes_sent").set(nic.bytes_sent)
            reg.gauge(f"node.{mid}.bytes_received").set(nic.bytes_received)
            for conn in node.kernel.connections.values():
                expiries += conn.recv_record.expiries
                synchronizations += conn.recv_record.synchronizations
                est = conn.estimator
                if est is not None and est.samples:
                    peer = conn.peer_mid
                    reg.gauge(f"node.{mid}.srtt_us.peer{peer}").set(
                        est.srtt_us
                    )
                    reg.gauge(f"node.{mid}.rttvar_us.peer{peer}").set(
                        est.rttvar_us
                    )
            shed = node.kernel.overload.sheds
            if shed:
                reg.gauge(f"node.{mid}.sheds").set(shed)
        reg.gauge("transport.deltat_expiries").set(expiries)
        reg.gauge("transport.deltat_synchronizations").set(synchronizations)
        faults = net.faults
        reg.gauge("faults.frames_lost").set(faults.frames_lost)
        reg.gauge("faults.frames_corrupted").set(faults.frames_corrupted)
        reg.gauge("faults.frames_scripted_drops").set(
            faults.frames_scripted_drops
        )
        reg.gauge("faults.deliveries_predicate_dropped").set(
            faults.deliveries_predicate_dropped
        )
        for category, charge_us in sorted(net.ledger.snapshot().items()):
            reg.gauge(f"cost.{category}_us").set(charge_us)
        reg.gauge("cost.total_us").set(net.ledger.total())

    def report(self) -> ObsReport:
        """Collect gauges, fold spans into latency histograms, snapshot.

        Idempotent: span latency histograms are rebuilt from the span
        set each call, so calling ``report`` twice never double-counts.
        """
        self.collect()
        spans = self.spans.spans()
        for hist in span_statistics(spans).values():
            self.registry.install(hist)
        completed = sum(1 for span in spans if span.completed)
        self.registry.gauge("txn.spans").set(len(spans))
        self.registry.gauge("txn.completed").set(completed)
        ledger = (
            self._net.ledger.snapshot() if self._net else dict(self._ledger)
        )
        return ObsReport(
            snapshot=self.registry.snapshot(), spans=spans, ledger=ledger
        )
