"""repro.obs — the observability subsystem.

The paper's entire evaluation (Chapter 5) is measurement: latency vs.
payload for PUT/GET/EXCHANGE, the 7.1 ms SIGNAL cost breakdown, SODA
vs. \\*MOD.  This package makes measurement a first-class subsystem
instead of ad-hoc test code:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and deterministic exact-quantile histograms (the simulation is
  deterministic, so no sampling is needed);
* :mod:`repro.obs.spans` — per-transaction span reconstruction
  (REQUEST → delivered → ACCEPT → complete, keyed by requester TID)
  from retained :class:`~repro.sim.tracing.Tracer` records;
* :mod:`repro.obs.instrument` — :class:`MetricsHub`, which turns a run
  (live, via a tracer sink, or post-hoc, from retained records) into a
  populated registry plus spans;
* :mod:`repro.obs.export` — console tables, JSONL, and the
  ``BENCH_*.json`` snapshot writer used by ``python -m repro``.

Metrics collection is **zero-overhead by default**: nothing here runs
unless a hub is installed on (or ingests) a network, and the per-layer
counters it reads (``BroadcastBus.busy_time_us``, the NIC frame/byte
counters, the cost ledger) are the ones the simulation already
maintains.
"""

from repro.obs.export import (
    BENCH_SCHEMA,
    emit_snapshot,
    render_metrics,
    render_span_table,
    write_metrics_jsonl,
    write_snapshot,
)
from repro.obs.instrument import MetricsHub, ObsReport
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import TransactionSpan, build_spans, span_statistics

__all__ = [
    "BENCH_SCHEMA",
    "CounterMetric",
    "GaugeMetric",
    "Histogram",
    "MetricsHub",
    "MetricsRegistry",
    "ObsReport",
    "TransactionSpan",
    "build_spans",
    "emit_snapshot",
    "render_metrics",
    "render_span_table",
    "span_statistics",
    "write_metrics_jsonl",
    "write_snapshot",
]
