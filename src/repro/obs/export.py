"""Exporters: console tables, JSONL, and ``BENCH_*.json`` snapshots.

All writers are deterministic — keys sorted, no wall-clock timestamps —
so two runs with the same seed produce byte-identical files, and the
``BENCH_*.json`` trajectory at the repo root can be diffed commit to
commit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.bench.tables import format_table
from repro.obs.metrics import Histogram
from repro.obs.spans import TransactionSpan

#: Schema tag stamped into every benchmark snapshot.
BENCH_SCHEMA = "soda.bench/1"

PathLike = Union[str, Path]


def snapshot_payload(
    kind: str,
    body: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap a result body in the snapshot envelope."""
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "meta": meta or {},
        "body": body,
    }


def write_snapshot(path: PathLike, payload: Dict[str, Any]) -> Path:
    """Write one JSON snapshot (sorted keys, trailing newline)."""
    target = Path(path)
    target.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return target


def emit_snapshot(
    path: PathLike,
    kind: str,
    body: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
    out=print,
) -> Path:
    """Envelope + write + announce, in one call.

    The single construction site for every ``BENCH_*.json`` emitter
    (CLI subcommands, the benchmark suite's terminal hook, the real
    runner): wraps ``body`` via :func:`snapshot_payload`, writes it with
    :func:`write_snapshot`, and reports ``wrote <path>`` through
    ``out``.
    """
    target = write_snapshot(path, snapshot_payload(kind, body, meta))
    out(f"wrote {target}")
    return target


def write_metrics_jsonl(
    path: PathLike, snapshot: Dict[str, Dict[str, Any]]
) -> Path:
    """One metric per line: ``{"name": ..., "type": ..., ...}``."""
    lines = []
    for name in sorted(snapshot):
        entry = {"name": name}
        entry.update(snapshot[name])
        lines.append(json.dumps(entry, sort_keys=True))
    target = Path(path)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


def _fmt(value: Any) -> Any:
    if value is None:
        return "-"
    if isinstance(value, float):
        return round(value, 3)
    return value


def render_metrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Console rendering: one table of scalars, one of histograms."""
    scalars = []
    histograms = []
    for name in sorted(snapshot):
        data = snapshot[name]
        if data["type"] == "histogram":
            histograms.append(
                (
                    name,
                    data["count"],
                    _fmt(data["p50"]),
                    _fmt(data["p90"]),
                    _fmt(data["p99"]),
                    _fmt(data["max"]),
                )
            )
        else:
            scalars.append((name, data["type"], _fmt(data["value"])))
    parts: List[str] = []
    if scalars:
        parts.append(
            format_table(
                ["metric", "type", "value"], scalars, title="Metrics"
            )
        )
    if histograms:
        parts.append(
            format_table(
                ["histogram", "count", "p50", "p90", "p99", "max"],
                histograms,
                title="Latency distributions",
            )
        )
    return "\n\n".join(parts)


def render_histogram(hist: Histogram) -> str:
    """One histogram as a single-row table."""
    return format_table(
        ["histogram", "count", "p50", "p90", "p99", "max"],
        [
            (
                hist.name,
                hist.count,
                _fmt(hist.quantile(0.50)),
                _fmt(hist.quantile(0.90)),
                _fmt(hist.quantile(0.99)),
                _fmt(hist.max),
            )
        ],
    )


def render_span_table(
    spans: Iterable[TransactionSpan], limit: int = 20
) -> str:
    """The first ``limit`` spans as a console table."""
    rows = []
    for span in list(spans)[:limit]:
        rows.append(
            (
                f"<{span.requester_mid},#{span.tid}>",
                span.verb,
                span.status,
                _fmt(span.request_us / 1000.0),
                _fmt(
                    None
                    if span.latency_us is None
                    else span.latency_us / 1000.0
                ),
                span.busy_nacks,
            )
        )
    return format_table(
        ["span", "verb", "status", "t0 ms", "latency ms", "busy"],
        rows,
        title="Transaction spans",
    )
