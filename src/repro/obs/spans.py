"""Per-transaction span reconstruction.

A *span* is the life of one REQUEST, keyed by its network-unique
``<requester MID, TID>`` signature, stitched together from the trace
records the kernel already emits:

========================  ==============================================
record                    span event
========================  ==============================================
``kernel.request``        span opens (requester side; verb + sizes)
``kernel.delivered_state``  ``delivered`` / ``accepted`` / ``done`` /
                          ``cancelled`` at the server
``kernel.accept``         the server issued ACCEPT
``kernel.complete``       the requester's completion interrupt (status)
``kernel.cancelled``      the requester successfully withdrew it
``kernel.busy_nack``      the REQUEST bounced off a BUSY handler
========================  ==============================================

Because reconstruction is a pure function of retained trace records it
can run live (through a tracer sink) or entirely post-hoc, and costs the
simulation nothing when unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.sim.tracing import TraceRecord

#: Transaction verbs, derived from buffer sizes exactly as §3.1 names
#: them: both empty = SIGNAL, put only = PUT, get only = GET, both =
#: EXCHANGE.
VERBS = ("signal", "put", "get", "exchange")


def classify_verb(put_bytes: int, get_bytes: int) -> str:
    if put_bytes and get_bytes:
        return "exchange"
    if put_bytes:
        return "put"
    if get_bytes:
        return "get"
    return "signal"


@dataclass
class TransactionSpan:
    """One REQUEST's reconstructed lifetime."""

    requester_mid: int
    tid: int
    server_mid: int
    pattern: int
    verb: str
    put_bytes: int
    get_bytes: int
    request_us: float
    delivered_us: Optional[float] = None
    accept_us: Optional[float] = None
    complete_us: Optional[float] = None
    #: "pending" | "completed" | "cancelled" | "crashed" | "unadvertised"
    status: str = "pending"
    busy_nacks: int = 0
    is_discover: bool = False

    @property
    def key(self) -> Tuple[int, int]:
        return (self.requester_mid, self.tid)

    @property
    def latency_us(self) -> Optional[float]:
        """REQUEST issue to completion interrupt (end-to-end)."""
        if self.complete_us is None:
            return None
        return self.complete_us - self.request_us

    @property
    def delivery_us(self) -> Optional[float]:
        """REQUEST issue to arrival at the server handler."""
        if self.delivered_us is None:
            return None
        return self.delivered_us - self.request_us

    @property
    def service_us(self) -> Optional[float]:
        """Server-side dwell: delivery to ACCEPT (scheduling freedom)."""
        if self.delivered_us is None or self.accept_us is None:
            return None
        return self.accept_us - self.delivered_us

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> Dict[str, object]:
        return {
            "requester_mid": self.requester_mid,
            "tid": self.tid,
            "server_mid": self.server_mid,
            "verb": self.verb,
            "put_bytes": self.put_bytes,
            "get_bytes": self.get_bytes,
            "status": self.status,
            "request_us": self.request_us,
            "delivered_us": self.delivered_us,
            "accept_us": self.accept_us,
            "complete_us": self.complete_us,
            "latency_us": self.latency_us,
            "busy_nacks": self.busy_nacks,
            "is_discover": self.is_discover,
        }


class SpanBuilder:
    """Incremental span reconstruction; feed records in time order."""

    def __init__(self) -> None:
        self._spans: Dict[Tuple[int, int], TransactionSpan] = {}

    def feed(self, record: TraceRecord) -> None:
        category = record.category
        if category == "kernel.request":
            self._on_request(record)
        elif category == "kernel.delivered_state":
            self._on_delivered_state(record)
        elif category == "kernel.accept":
            self._on_accept(record)
        elif category == "kernel.complete":
            self._on_complete(record)
        elif category == "kernel.cancelled":
            self._on_cancelled(record)
        elif category == "kernel.busy_nack":
            self._on_busy_nack(record)

    def _on_request(self, record: TraceRecord) -> None:
        put_bytes = record.get("put", 0)
        get_bytes = record.get("get", 0)
        server_mid = record["dst"]
        span = TransactionSpan(
            requester_mid=record["mid"],
            tid=record["tid"],
            server_mid=server_mid,
            pattern=record.get("pattern", 0),
            verb=classify_verb(put_bytes, get_bytes),
            put_bytes=put_bytes,
            get_bytes=get_bytes,
            request_us=record.time,
            is_discover=server_mid < 0,
        )
        self._spans[span.key] = span

    def _lookup(self, requester_mid: int, tid: int) -> Optional[TransactionSpan]:
        return self._spans.get((requester_mid, tid))

    def _on_delivered_state(self, record: TraceRecord) -> None:
        span = self._lookup(record["src"], record["tid"])
        if span is None:
            return
        state = record["state"]
        if state == "delivered" and span.delivered_us is None:
            span.delivered_us = record.time
            span.server_mid = record["mid"]

    def _on_accept(self, record: TraceRecord) -> None:
        src = record.get("src")
        tid = record.get("tid")
        if src is None or tid is None:
            return
        span = self._lookup(src, tid)
        if span is not None and span.accept_us is None:
            span.accept_us = record.time

    def _on_complete(self, record: TraceRecord) -> None:
        span = self._lookup(record["mid"], record["tid"])
        if span is None:
            return
        span.complete_us = record.time
        span.status = record.get("status", "completed")

    def _on_cancelled(self, record: TraceRecord) -> None:
        span = self._lookup(record["mid"], record["tid"])
        if span is None:
            return
        span.status = "cancelled"
        if span.complete_us is None:
            span.complete_us = record.time

    def _on_busy_nack(self, record: TraceRecord) -> None:
        span = self._lookup(record["src"], record["tid"])
        if span is not None:
            span.busy_nacks += 1

    def spans(self) -> List[TransactionSpan]:
        """All spans, in REQUEST-issue order (deterministic)."""
        return sorted(
            self._spans.values(), key=lambda s: (s.request_us, s.key)
        )


def build_spans(records: Iterable[TraceRecord]) -> List[TransactionSpan]:
    """Reconstruct spans from retained trace records."""
    builder = SpanBuilder()
    for record in records:
        builder.feed(record)
    return builder.spans()


def span_statistics(
    spans: Iterable[TransactionSpan],
) -> Dict[str, Histogram]:
    """Per-verb end-to-end latency histograms (ms) of completed spans."""
    histograms: Dict[str, Histogram] = {}
    for span in spans:
        latency = span.latency_us
        if not span.completed or latency is None:
            continue
        hist = histograms.get(span.verb)
        if hist is None:
            hist = histograms[span.verb] = Histogram(
                f"txn.latency_ms.{span.verb}"
            )
        hist.observe(latency / 1000.0)
    return histograms
