"""Counters, gauges, and deterministic exact-quantile histograms.

The simulation is a deterministic discrete-event system, so histograms
keep *every* sample and report exact quantiles (nearest-rank): two runs
with the same seed produce bit-identical snapshots, which is what lets
``BENCH_*.json`` files be diffed across commits.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: Quantiles reported by every histogram snapshot.
QUANTILES = (0.50, 0.90, 0.99)


class CounterMetric:
    """A monotonically increasing integer counter."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class GaugeMetric:
    """A point-in-time value (utilization, queue depth, ledger total)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Exact-quantile histogram over all observed samples.

    ``quantile`` uses the nearest-rank definition on the sorted sample
    list: for ``n`` samples, quantile ``q`` is the element at index
    ``ceil(q * n) - 1``.  Empty histograms report ``None`` quantiles.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return self.sum / len(self._samples)

    @property
    def min(self) -> Optional[float]:
        return min(self._samples) if self._samples else None

    @property
    def max(self) -> Optional[float]:
        return max(self._samples) if self._samples else None

    def quantile(self, q: float) -> Optional[float]:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if not self._samples:
            return None
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        index = max(0, math.ceil(q * len(self._sorted)) - 1)
        return self._sorted[index]

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """A named collection of metrics with a deterministic snapshot.

    Metrics are created on first use (``counter``/``gauge``/
    ``histogram``); asking for an existing name with a different type is
    an error.  :meth:`snapshot` returns a plain dict keyed by metric
    name in sorted order, suitable for JSON export and equality
    comparison across runs.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def install(self, metric) -> None:
        """Insert (or replace) a fully built metric under its own name."""
        self._metrics[metric.name] = metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        self._metrics.clear()
