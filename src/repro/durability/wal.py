"""The checksummed, length-prefixed WAL record codec.

Frame layout::

    +-------+-------+-----------+---------+-------------+
    | magic | rtype | length u32| crc u32 | payload ... |
    +-------+-------+-----------+---------+-------------+

The CRC covers the record type and the payload, so a single flipped bit
anywhere in a frame — header or body — breaks the decode of that frame.
:func:`decode_records` returns the longest cleanly-decodable *prefix*
and never raises: a torn tail, a bit-rotted record, or garbage mid-file
all truncate the replay at the last good frame.  That prefix property
is the contract crash recovery is built on, and the one the Hypothesis
suite attacks.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

__all__ = [
    "MAX_RECORD_BYTES",
    "WriteAheadLog",
    "decode_records",
    "encode_record",
]

_MAGIC = 0xA5
_HEADER = struct.Struct("!BBII")  # magic, rtype, length, crc32

#: Sanity bound: a length field above this is treated as corruption,
#: not as an instruction to wait for a gigabyte of payload.
MAX_RECORD_BYTES = 1 << 20


def _crc(rtype: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes((rtype,))))


def encode_record(rtype: int, payload: bytes) -> bytes:
    """Frame one record."""
    if not 0 <= rtype <= 0xFF:
        raise ValueError(f"record type out of range: {rtype}")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(f"record too large: {len(payload)} bytes")
    header = _HEADER.pack(_MAGIC, rtype, len(payload), _crc(rtype, payload))
    return header + payload


def decode_records(data: bytes) -> Tuple[List[Tuple[int, bytes]], int, bool]:
    """Decode the longest valid prefix of ``data``.

    Returns ``(records, consumed, clean)``: the decoded ``(rtype,
    payload)`` list, the byte offset of the first undecodable frame,
    and whether the whole input decoded (``consumed == len(data)``).
    Never raises.
    """
    records: List[Tuple[int, bytes]] = []
    offset = 0
    total = len(data)
    while True:
        if offset == total:
            return records, offset, True
        if total - offset < _HEADER.size:
            return records, offset, False
        magic, rtype, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC or length > MAX_RECORD_BYTES:
            return records, offset, False
        end = offset + _HEADER.size + length
        if end > total:
            return records, offset, False
        payload = bytes(data[offset + _HEADER.size : end])
        if _crc(rtype, payload) != crc:
            return records, offset, False
        records.append((rtype, payload))
        offset = end


class WriteAheadLog:
    """Append-only framed records in one disk file."""

    def __init__(self, disk, name: str) -> None:
        self.disk = disk
        self.name = name

    def append(self, rtype: int, payload: bytes) -> None:
        self.disk.append(self.name, encode_record(rtype, payload))

    def sync(self) -> None:
        self.disk.fsync(self.name)

    def replay(
        self, truncate_torn_tail: bool = True
    ) -> Tuple[List[Tuple[int, bytes]], bool]:
        """Decode the log; optionally truncate any torn tail in place.

        Truncating matters: without it, appends after recovery would
        land *behind* the garbage tail and be unreachable to every
        future replay.
        """
        if not self.disk.exists(self.name):
            return [], True
        data = self.disk.read(self.name)
        records, consumed, clean = decode_records(data)
        if not clean and truncate_torn_tail:
            self.disk.truncate(self.name, consumed)
        return records, clean


def wal_name(seq: int) -> str:
    return f"wal-{seq}.log"


def parse_wal_seq(name: str) -> Optional[int]:
    if not (name.startswith("wal-") and name.endswith(".log")):
        return None
    middle = name[4:-4]
    return int(middle) if middle.isdigit() else None
