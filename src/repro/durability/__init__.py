"""Durable node state: disks, WAL + snapshots, crash-consistent recovery.

The missing half of the §3.5.2 reboot story: SODA's BOOT/LOAD brings a
node back *amnesiac*, so every replica in :mod:`repro.replication` that
reboots must be repaired over the network.  This package gives a node a
local disk with a write-ahead log and periodic snapshots, so a rebooted
replica rejoins with its durable state — and an injectable fault disk
(torn writes, dropped fsyncs, bit-rot, full disk) to prove the recovery
path crash-consistent, ALICE-style.

Layers, bottom up:

* :mod:`repro.durability.disk` — the :class:`Disk` byte store with two
  backends (:class:`SimDisk` charges modelled I/O time to the cost
  ledger; :class:`FileDisk` is real files for the netreal backend),
  both wrapped by :class:`FaultDisk` + :class:`DiskFaultPlan`;
* :mod:`repro.durability.wal` — the CRC-framed record codec and
  :class:`WriteAheadLog` (decode returns the longest valid prefix and
  never raises — the property the fault disk attacks);
* :mod:`repro.durability.snapshot` — atomic write-fsync-rename
  snapshot installation;
* :mod:`repro.durability.state` — :class:`ReplicaStorage`, the
  KV replica's persistence facade: epoch/vote, log entries,
  truncations, commit marks, WAL-over-snapshot recovery;
* :mod:`repro.durability.bench` — ``python -m repro durability-bench``
  (BENCH_durability.json).

See docs/DURABILITY.md for the full disk model and fault taxonomy.
"""

from repro.durability.disk import (
    Disk,
    DiskError,
    DiskFaultPlan,
    DiskFullError,
    FaultDisk,
    FileDisk,
    SimDisk,
)
from repro.durability.snapshot import read_snapshot, write_snapshot
from repro.durability.state import RecoveredState, ReplicaStorage
from repro.durability.wal import (
    MAX_RECORD_BYTES,
    WriteAheadLog,
    decode_records,
    encode_record,
)

__all__ = [
    "Disk",
    "DiskError",
    "DiskFaultPlan",
    "DiskFullError",
    "FaultDisk",
    "FileDisk",
    "MAX_RECORD_BYTES",
    "RecoveredState",
    "ReplicaStorage",
    "SimDisk",
    "WriteAheadLog",
    "decode_records",
    "encode_record",
    "read_snapshot",
    "write_snapshot",
]
