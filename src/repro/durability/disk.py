"""The disk abstraction: honest backends and the injectable fault disk.

:class:`SimDisk` and :class:`FileDisk` are *honest*: a write is applied
to the store immediately and ``fsync`` is a (charged) no-op barrier.
All crash-consistency modelling lives in :class:`FaultDisk`, which
buffers data writes like a page cache and only forwards them to the
inner disk at ``fsync`` — or never, or partially, or torn, as its
:class:`DiskFaultPlan` dictates.  Because the buffering is in the
wrapper, the same fault model runs unchanged over the in-sim byte store
and over real files in the netreal backend.

Fault taxonomy (docs/DURABILITY.md):

* **power loss** — ``power_loss()`` drops every unsynced write; with
  torn writes armed, a *prefix* of the pending write stream survives,
  cut at a plan-chosen byte (the classic torn tail ALICE checks for);
* **dropped fsync** — ``fsync`` reports success but persists nothing
  (writeback error swallowed by the cache);
* **partial fsync** — ``fsync`` persists only a prefix of the pending
  writes (reordered writeback crossed by the barrier);
* **bit-rot** — ``flip_bits`` corrupts *durable* bytes in place; the
  WAL's CRC framing must detect it;
* **full disk** — after an armed byte budget, writes raise
  :class:`DiskFullError`.

File names are flat (no directories); metadata operations (create,
rename, delete, truncate) are journalled synchronously — the model's
one simplification, standing in for a journalling file system's
metadata guarantees, so ``rename`` is the atomic-install primitive.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Disk",
    "DiskError",
    "DiskFaultPlan",
    "DiskFullError",
    "FaultDisk",
    "FileDisk",
    "SimDisk",
]


class DiskError(Exception):
    """A disk operation failed (missing file, I/O failure)."""


class DiskFullError(DiskError):
    """The (fault-armed) byte budget is exhausted."""


class Disk:
    """Abstract flat-namespace byte store.

    ``write`` at an offset past the current size zero-fills the gap,
    like a sparse file.  ``fsync`` is per-file, as ``fsync(2)`` is.
    """

    def write(self, name: str, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> int:
        """Write at end-of-file; returns the offset written at."""
        offset = self.size(name) if self.exists(name) else 0
        self.write(name, offset, data)
        return offset

    def read(self, name: str) -> bytes:
        raise NotImplementedError

    def fsync(self, name: str) -> None:
        raise NotImplementedError

    def truncate(self, name: str, size: int) -> None:
        raise NotImplementedError

    def rename(self, old: str, new: str) -> None:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove a file; missing files are a forgiving no-op."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def size(self, name: str) -> int:
        return len(self.read(name))

    def list_files(self) -> List[str]:
        raise NotImplementedError

    def power_loss(self) -> None:
        """Honest disks hold nothing volatile; FaultDisk overrides."""
        return None


class SimDisk(Disk):
    """In-sim byte store; charges modelled I/O time to the cost ledger.

    The cost model is deliberately simple — a seek plus per-byte
    transfer per operation, a fixed barrier cost per fsync — and is
    charged under the ``disk_io`` ledger category so the overhead
    breakdown (and the durability bench) can price fsync policies.
    """

    SEEK_US = 120.0
    PER_BYTE_US = 0.02
    FSYNC_US = 400.0

    def __init__(self, ledger=None) -> None:
        self.ledger = ledger
        self._files: Dict[str, bytearray] = {}

    def _charge(self, us: float) -> None:
        if self.ledger is not None:
            self.ledger.charge("disk_io", us)

    def write(self, name: str, offset: int, data: bytes) -> None:
        buf = self._files.setdefault(name, bytearray())
        if offset > len(buf):
            buf.extend(b"\x00" * (offset - len(buf)))
        buf[offset : offset + len(data)] = data
        self._charge(self.SEEK_US + len(data) * self.PER_BYTE_US)

    def read(self, name: str) -> bytes:
        try:
            buf = self._files[name]
        except KeyError:
            raise DiskError(f"no such file: {name!r}") from None
        self._charge(self.SEEK_US + len(buf) * self.PER_BYTE_US)
        return bytes(buf)

    def fsync(self, name: str) -> None:
        self._charge(self.FSYNC_US)

    def truncate(self, name: str, size: int) -> None:
        buf = self._files.setdefault(name, bytearray())
        del buf[size:]
        self._charge(self.SEEK_US)

    def rename(self, old: str, new: str) -> None:
        if old not in self._files:
            raise DiskError(f"no such file: {old!r}")
        self._files[new] = self._files.pop(old)
        self._charge(self.SEEK_US)

    def delete(self, name: str) -> None:
        self._files.pop(name, None)
        self._charge(self.SEEK_US)

    def exists(self, name: str) -> bool:
        return name in self._files

    def size(self, name: str) -> int:
        try:
            return len(self._files[name])
        except KeyError:
            raise DiskError(f"no such file: {name!r}") from None

    def list_files(self) -> List[str]:
        return sorted(self._files)


class FileDisk(Disk):
    """Real files under one directory, for the netreal backend."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        if "/" in name or name.startswith("."):
            raise DiskError(f"bad file name: {name!r}")
        return os.path.join(self.root, name)

    def write(self, name: str, offset: int, data: bytes) -> None:
        path = self._path(name)
        mode = "r+b" if os.path.exists(path) else "w+b"
        with open(path, mode) as handle:
            handle.seek(0, os.SEEK_END)
            end = handle.tell()
            if offset > end:
                handle.write(b"\x00" * (offset - end))
            handle.seek(offset)
            handle.write(data)

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise DiskError(f"no such file: {name!r}") from None

    def fsync(self, name: str) -> None:
        try:
            fd = os.open(self._path(name), os.O_RDONLY)
        except FileNotFoundError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, name: str, size: int) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            open(path, "wb").close()
        os.truncate(path, size)

    def rename(self, old: str, new: str) -> None:
        try:
            os.replace(self._path(old), self._path(new))
        except FileNotFoundError:
            raise DiskError(f"no such file: {old!r}") from None

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise DiskError(f"no such file: {name!r}") from None

    def list_files(self) -> List[str]:
        return sorted(os.listdir(self.root))


class DiskFaultPlan:
    """Deterministic storage-fault schedule for :class:`FaultDisk`.

    Probabilities and scripted strikes, mirroring the network
    :class:`~repro.net.errors.FaultPlan`: everything draws from one
    seeded RNG, so a (workload, schedule, seed) chaos cell replays the
    same disk faults byte for byte.
    """

    def __init__(
        self,
        seed: int = 0,
        torn_write_probability: float = 0.0,
        fsync_partial_probability: float = 0.0,
        fsync_drop_next: int = 0,
        full_after_bytes: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("torn_write_probability", torn_write_probability),
            ("fsync_partial_probability", fsync_partial_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.rng = random.Random(seed)
        #: On power loss, chance that a torn prefix of the pending
        #: write stream survives (instead of losing it all).
        self.torn_write_probability = torn_write_probability
        #: Per-fsync chance of persisting only a prefix of the pending
        #: writes while still reporting success.
        self.fsync_partial_probability = fsync_partial_probability
        #: Scripted strike: the next N fsyncs persist nothing (and lie).
        self.fsync_drop_next = fsync_drop_next
        #: Remaining write budget in bytes; writes past it raise
        #: :class:`DiskFullError`.  ``None`` = unbounded.
        self.full_after_bytes = full_after_bytes
        # -- accounting (surfaced in chaos cell reports) ---------------
        self.torn_writes = 0
        self.fsyncs_dropped = 0
        self.fsyncs_partial = 0
        self.bits_flipped = 0
        self.writes_rejected_full = 0

    def counter_snapshot(self) -> Dict[str, int]:
        return {
            "torn_writes": self.torn_writes,
            "fsyncs_dropped": self.fsyncs_dropped,
            "fsyncs_partial": self.fsyncs_partial,
            "bits_flipped": self.bits_flipped,
            "writes_rejected_full": self.writes_rejected_full,
        }


class FaultDisk(Disk):
    """Page-cache-modelling wrapper: writes pend until fsync.

    ``read`` returns the *logical* view (durable bytes overlaid with
    pending writes) — the running program never sees its own writes
    vanish; only a :meth:`power_loss` reveals what was actually
    durable, exactly as with a real page cache.
    """

    def __init__(self, inner: Disk, plan: Optional[DiskFaultPlan] = None) -> None:
        self.inner = inner
        self.plan = plan or DiskFaultPlan()
        #: name -> ordered (offset, bytes) writes since the last fsync.
        self._pending: Dict[str, List[Tuple[int, bytes]]] = {}

    # -- data path -----------------------------------------------------

    def write(self, name: str, offset: int, data: bytes) -> None:
        plan = self.plan
        if plan.full_after_bytes is not None:
            if len(data) > plan.full_after_bytes:
                plan.writes_rejected_full += 1
                raise DiskFullError(
                    f"disk full writing {len(data)} byte(s) to {name!r}"
                )
            plan.full_after_bytes -= len(data)
        if not self.inner.exists(name):
            # Creation is metadata: the empty file becomes durable now,
            # its contents only at fsync.
            self.inner.write(name, 0, b"")
        self._pending.setdefault(name, []).append((offset, bytes(data)))

    def read(self, name: str) -> bytes:
        pending = self._pending.get(name, ())
        if not self.inner.exists(name) and not pending:
            raise DiskError(f"no such file: {name!r}")
        view = bytearray(self.inner.read(name) if self.inner.exists(name) else b"")
        for offset, data in pending:
            if offset > len(view):
                view.extend(b"\x00" * (offset - len(view)))
            view[offset : offset + len(data)] = data
        return bytes(view)

    def fsync(self, name: str) -> None:
        plan = self.plan
        pending = self._pending.pop(name, [])
        if not pending:
            self.inner.fsync(name)
            return
        if plan.fsync_drop_next > 0:
            plan.fsync_drop_next -= 1
            plan.fsyncs_dropped += 1
            self._pending[name] = pending  # still volatile; caller lied to
            return
        if (
            plan.fsync_partial_probability > 0.0
            and plan.rng.random() < plan.fsync_partial_probability
        ):
            keep = plan.rng.randrange(len(pending))
            plan.fsyncs_partial += 1
            for offset, data in pending[:keep]:
                self.inner.write(name, offset, data)
            self.inner.fsync(name)
            self._pending[name] = pending[keep:]
            return
        for offset, data in pending:
            self.inner.write(name, offset, data)
        self.inner.fsync(name)

    def power_loss(self) -> None:
        """Drop the page cache; maybe keep a torn prefix per file."""
        plan = self.plan
        pending, self._pending = self._pending, {}
        for name, writes in pending.items():
            if (
                plan.torn_write_probability <= 0.0
                or plan.rng.random() >= plan.torn_write_probability
            ):
                continue
            total = sum(len(data) for _off, data in writes)
            keep = plan.rng.randrange(total + 1)
            torn = keep < total
            for offset, data in writes:
                if keep <= 0:
                    break
                self.inner.write(name, offset, data[:keep])
                keep -= len(data)
            if torn:
                plan.torn_writes += 1

    # -- fault injection on durable bytes ------------------------------

    def flip_bits(self, match: str, count: int = 1) -> int:
        """Flip ``count`` random bits in durable files matching ``match``.

        Bit-rot strikes what is already on the platter — pending writes
        are untouched.  Returns the number of bits actually flipped
        (zero when nothing durable matches).
        """
        plan = self.plan
        names = [
            name
            for name in self.inner.list_files()
            if match in name and self.inner.size(name) > 0
        ]
        flipped = 0
        for _ in range(count):
            if not names:
                break
            name = plan.rng.choice(names)
            data = bytearray(self.inner.read(name))
            bit = plan.rng.randrange(len(data) * 8)
            data[bit // 8] ^= 1 << (bit % 8)
            self.inner.write(name, 0, bytes(data))
            flipped += 1
        plan.bits_flipped += flipped
        return flipped

    # -- metadata (journalled synchronously) ---------------------------

    def truncate(self, name: str, size: int) -> None:
        view = self.read(name) if self.exists(name) else b""
        self._pending.pop(name, None)
        self.inner.truncate(name, 0)
        if view[:size]:
            self.inner.write(name, 0, view[:size])

    def rename(self, old: str, new: str) -> None:
        if old in self._pending:
            self._pending[new] = self._pending.pop(old)
            if not self.inner.exists(old):
                self.inner.write(old, 0, b"")
        self._pending.pop(new, None)
        self.inner.rename(old, new)

    def delete(self, name: str) -> None:
        self._pending.pop(name, None)
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name) or name in self._pending

    def size(self, name: str) -> int:
        return len(self.read(name))

    def list_files(self) -> List[str]:
        return sorted(set(self.inner.list_files()) | set(self._pending))
