"""Atomic snapshot installation: write, fsync, rename.

A snapshot is a single WAL-framed record in its own file, installed
with the classic crash-safe dance: write ``snap-<seq>.tmp``, fsync it,
then rename over the final name.  Rename is the atomic commit point
(the fault disk journals metadata synchronously, standing in for a
journalling file system) — a crash before it leaves only a ``.tmp``
file recovery ignores; a torn write inside it leaves a CRC-invalid
record that :func:`read_snapshot` rejects, falling back to the previous
snapshot generation.
"""

from __future__ import annotations

from typing import Optional

from repro.durability.wal import decode_records, encode_record

__all__ = ["read_snapshot", "snap_name", "parse_snap_seq", "write_snapshot"]

_REC_SNAPSHOT = 0x01


def snap_name(seq: int) -> str:
    return f"snap-{seq}"


def parse_snap_seq(name: str) -> Optional[int]:
    if not name.startswith("snap-"):
        return None
    middle = name[5:]
    return int(middle) if middle.isdigit() else None


def write_snapshot(disk, seq: int, blob: bytes) -> None:
    """Install ``blob`` as snapshot generation ``seq`` atomically."""
    tmp = f"{snap_name(seq)}.tmp"
    disk.delete(tmp)
    disk.write(tmp, 0, encode_record(_REC_SNAPSHOT, blob))
    disk.fsync(tmp)
    disk.rename(tmp, snap_name(seq))


def read_snapshot(disk, seq: int) -> Optional[bytes]:
    """The snapshot blob, or ``None`` if missing or corrupt."""
    name = snap_name(seq)
    if not disk.exists(name):
        return None
    records, _consumed, clean = decode_records(disk.read(name))
    if not clean or len(records) != 1 or records[0][0] != _REC_SNAPSHOT:
        return None
    return records[0][1]
