"""``python -m repro durability-bench``: the cost of not forgetting.

Three questions, all answered in *modelled* microseconds charged to the
``disk_io`` ledger category by :class:`SimDisk` — never wall clock, so
the committed ``BENCH_durability.json`` is byte-stable across machines:

* **replay** — how long does WAL-over-snapshot recovery take as the
  un-snapshotted log grows?  (Linear in records; the reason snapshots
  exist.)
* **snapshot interval** — the compaction tradeoff: frequent snapshots
  buy cheap recovery at a steady-state write premium.
* **fsync policy** — what per-record durability (``always``) costs over
  attestation-point batching (``batch``), with ``never`` as the
  lower bound that buys no durability at all.
"""

from __future__ import annotations

from typing import Dict, List

from repro.durability.disk import SimDisk
from repro.durability.state import FSYNC_POLICIES, EntryTuple, ReplicaStorage
from repro.sim.tracing import CostLedger

__all__ = ["run_durability_bench"]

REPLAY_LOG_LENGTHS = (200, 1000, 5000)
SNAPSHOT_INTERVALS = (16, 64, 256)
SNAPSHOT_WORKLOAD_RECORDS = 2000
FSYNC_WORKLOAD_RECORDS = 1000
FSYNC_BATCH_EVERY = 10  # records per explicit barrier under "batch"


def _entry(i: int) -> EntryTuple:
    return (1, 1, i % 8, 1000 + i, 0)


def _fill(
    storage: ReplicaStorage, records: int, sync_every: int
) -> List[EntryTuple]:
    log: List[EntryTuple] = []
    for i in range(records):
        entry = _entry(i)
        log.append(entry)
        storage.log_entry(i, entry)
        storage.log_commit(i)
        if sync_every and (i + 1) % sync_every == 0:
            storage.sync()
        storage.maybe_snapshot(1, i, log)
    storage.sync()
    return log


def _replay_cost(disk: SimDisk) -> Dict[str, float]:
    """Recover from ``disk`` under a fresh ledger; report what it cost."""
    ledger = CostLedger()
    disk.ledger = ledger
    storage = ReplicaStorage(disk)
    recovered = storage.recover()
    return {
        "replay_disk_us": round(ledger.get("disk_io"), 3),
        "wal_records_replayed": 0 if recovered is None else recovered.wal_records,
        "entries_recovered": 0 if recovered is None else len(recovered.log),
    }


def run_durability_bench() -> Dict[str, object]:
    # 1. Recovery replay time vs WAL length (no snapshots).
    replay = []
    for length in REPLAY_LOG_LENGTHS:
        disk = SimDisk()
        _fill(
            ReplicaStorage(disk, snapshot_interval=10**9),
            length,
            sync_every=FSYNC_BATCH_EVERY,
        )
        row = {"log_entries": length}
        row.update(_replay_cost(disk))
        replay.append(row)

    # 2. Snapshot-interval tradeoff at a fixed workload.
    intervals = []
    for interval in SNAPSHOT_INTERVALS:
        ledger = CostLedger()
        disk = SimDisk(ledger=ledger)
        storage = ReplicaStorage(disk, snapshot_interval=interval)
        _fill(storage, SNAPSHOT_WORKLOAD_RECORDS, sync_every=FSYNC_BATCH_EVERY)
        runtime_us = ledger.get("disk_io")
        row = {
            "snapshot_interval": interval,
            "snapshots_taken": storage.snapshots,
            "runtime_disk_us": round(runtime_us, 3),
        }
        row.update(_replay_cost(disk))
        intervals.append(row)

    # 3. Fsync-policy A/B at a fixed workload, no snapshots.
    policies = []
    for policy in FSYNC_POLICIES:
        ledger = CostLedger()
        disk = SimDisk(ledger=ledger)
        storage = ReplicaStorage(
            disk, snapshot_interval=10**9, fsync_policy=policy
        )
        _fill(storage, FSYNC_WORKLOAD_RECORDS, sync_every=FSYNC_BATCH_EVERY)
        policies.append(
            {
                "fsync_policy": policy,
                "records": FSYNC_WORKLOAD_RECORDS,
                "fsyncs": storage.syncs,
                "runtime_disk_us": round(ledger.get("disk_io"), 3),
            }
        )

    return {
        "benchmark": "durability",
        "units": "modelled microseconds of disk I/O (SimDisk cost model)",
        "replay": replay,
        "snapshot_intervals": intervals,
        "fsync_policies": policies,
    }
