"""``ReplicaStorage``: the KV replica's persistence facade.

What a replica must not forget (docs/REPLICATION.md):

* its **epoch** — a vote grant is a promise never to confirm an older
  primary again; forgetting it re-opens the split-brain the fencing
  closed;
* its **log entries** — a CONFIRM attests "I hold the log up to here";
  an acknowledged write exists *because* a quorum made that attestation;
* **truncations** and the **commit mark** — so replay reconstructs the
  exact log shape, not just its contents.

Each of those becomes one WAL record.  Periodically the whole state is
folded into a snapshot (atomic install, :mod:`repro.durability.
snapshot`) and the WAL starts a fresh segment — bounding replay time,
which is the tradeoff ``python -m repro durability-bench`` measures.

Recovery picks the newest generation whose snapshot validates *and*
whose WAL segment exists (an install can crash between the two), then
replays the segment over it; a torn tail truncates at the last good
record.  If no generation is usable — bit-rot ate the only snapshot —
``recover`` returns ``None`` and the replica falls back to the
amnesiac path: rejoin empty, let anti-entropy repair it.

Fsync policies: ``always`` syncs after every record (one barrier per
append), ``batch`` leaves syncing to the caller's explicit barriers
(the replica syncs before any CONFIRM/VOTE reply and before counting
its own quorum — the protocol points where durability is attested),
``never`` is for the bench's lower bound only.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.durability.disk import DiskError, DiskFullError
from repro.durability.snapshot import (
    parse_snap_seq,
    read_snapshot,
    snap_name,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog, wal_name

__all__ = ["FSYNC_POLICIES", "EntryTuple", "RecoveredState", "ReplicaStorage"]

#: (epoch, op, key, token, expected) — the durable shape of one log
#: entry.  This layer deliberately does not import the replication
#: package's ``Entry`` dataclass: durability sits *below* replication,
#: and the replica converts at the boundary.
EntryTuple = Tuple[int, int, int, int, int]


def _entry_fields(entry) -> EntryTuple:
    """Accept a plain tuple or anything Entry-shaped."""
    if isinstance(entry, tuple):
        return entry
    return (entry.epoch, entry.op, entry.key, entry.token, entry.expected)

REC_ENTRY = 0x02
REC_EPOCH = 0x03
REC_COMMIT = 0x04
REC_TRUNCATE = 0x05

_ENTRY_REC = struct.Struct("!IHBBII")  # index + Entry fields
_U32 = struct.Struct("!I")

FSYNC_POLICIES = ("always", "batch", "never")


@dataclass
class RecoveredState:
    """What the disk gave back: the durable replica state."""

    epoch: int
    commit: int
    log: List[EntryTuple]
    #: False when a torn WAL tail was truncated during replay.
    clean: bool
    source: str  # "snapshot+wal" | "wal"
    wal_records: int


class ReplicaStorage:
    def __init__(
        self,
        disk,
        snapshot_interval: int = 64,
        fsync_policy: str = "batch",
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync_policy!r}"
            )
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.disk = disk
        self.snapshot_interval = snapshot_interval
        self.fsync_policy = fsync_policy
        self._seq = 0
        self._wal = WriteAheadLog(disk, wal_name(0))
        self._dirty = False
        self._records_since_snapshot = 0
        #: Set on the first failed write (full disk): the store keeps
        #: serving from memory but stops attesting durability.
        self.degraded = False
        self.appends = 0
        self.syncs = 0
        self.snapshots = 0
        self.snapshot_failures = 0

    # -- recovery ------------------------------------------------------

    def recover(self) -> Optional[RecoveredState]:
        """Load the newest usable generation; ``None`` = amnesia."""
        seqs = sorted(
            (
                seq
                for seq in map(parse_snap_seq, self.disk.list_files())
                if seq is not None
            ),
            reverse=True,
        )
        for seq in seqs:
            if not self.disk.exists(wal_name(seq)):
                continue  # install crashed before the new segment
            blob = read_snapshot(self.disk, seq)
            if blob is None:
                continue  # torn or bit-rotted snapshot
            try:
                state = json.loads(blob.decode("utf-8"))
                base = [
                    (int(a), int(b), int(c), int(d), int(e))
                    for a, b, c, d, e in state["log"]
                ]
                epoch, commit = int(state["e"]), int(state["c"])
            except (ValueError, KeyError, TypeError):
                continue
            return self._replay(seq, epoch, commit, base, "snapshot+wal")
        if self.disk.exists(wal_name(0)):
            return self._replay(0, 0, 0, [], "wal")
        return None

    def _replay(
        self,
        seq: int,
        epoch: int,
        commit: int,
        log: List[EntryTuple],
        source: str,
    ) -> RecoveredState:
        self._seq = seq
        self._wal = WriteAheadLog(self.disk, wal_name(seq))
        records, clean = self._wal.replay()
        for rtype, payload in records:
            try:
                if rtype == REC_ENTRY:
                    index, e, op, key, token, expected = _ENTRY_REC.unpack(
                        payload
                    )
                    if index > len(log):
                        clean = False  # gap: impossible tail, stop replay
                        break
                    del log[index:]
                    log.append((e, op, key, token, expected))
                elif rtype == REC_EPOCH:
                    epoch = _U32.unpack(payload)[0]
                elif rtype == REC_COMMIT:
                    commit = _U32.unpack(payload)[0]
                elif rtype == REC_TRUNCATE:
                    del log[_U32.unpack(payload)[0] :]
                # Unknown record types are skipped (forward compat).
            except struct.error:
                clean = False
                break
        return RecoveredState(
            epoch=epoch,
            commit=min(commit, len(log)),
            log=log,
            clean=clean,
            source=source,
            wal_records=len(records),
        )

    # -- mutation ------------------------------------------------------

    def log_entry(self, index: int, entry) -> None:
        self._append(REC_ENTRY, _ENTRY_REC.pack(index, *_entry_fields(entry)))

    def log_truncate(self, index: int) -> None:
        self._append(REC_TRUNCATE, _U32.pack(index))

    def log_epoch(self, epoch: int) -> None:
        self._append(REC_EPOCH, _U32.pack(epoch))

    def log_commit(self, commit: int) -> None:
        self._append(REC_COMMIT, _U32.pack(commit))

    def _append(self, rtype: int, payload: bytes) -> None:
        if self.degraded:
            return
        try:
            self._wal.append(rtype, payload)
        except DiskFullError:
            self.degraded = True
            return
        self.appends += 1
        self._records_since_snapshot += 1
        self._dirty = True
        if self.fsync_policy == "always":
            self.sync()

    def sync(self) -> None:
        """Make everything appended so far durable (policy permitting)."""
        if self.degraded or not self._dirty or self.fsync_policy == "never":
            return
        self._wal.sync()
        self.syncs += 1
        self._dirty = False

    # -- snapshotting --------------------------------------------------

    def maybe_snapshot(self, epoch: int, commit: int, log) -> bool:
        """Fold state into a new generation once enough WAL accrued."""
        if self.degraded:
            return False
        if self._records_since_snapshot < self.snapshot_interval:
            return False
        seq = self._seq + 1
        blob = json.dumps(
            {
                "e": epoch,
                "c": commit,
                "log": [list(_entry_fields(e)) for e in log],
            },
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            write_snapshot(self.disk, seq, blob)
            # The fresh (empty) segment must be durable before the old
            # generation is GC'd: recovery requires snapshot AND segment.
            self.disk.delete(wal_name(seq))
            self.disk.write(wal_name(seq), 0, b"")
            self.disk.fsync(wal_name(seq))
        except DiskError:
            self.snapshot_failures += 1
            return False
        old = self._seq
        self._seq = seq
        self._wal = WriteAheadLog(self.disk, wal_name(seq))
        self._dirty = False
        self._records_since_snapshot = 0
        self.snapshots += 1
        self.disk.delete(wal_name(old))
        self.disk.delete(snap_name(old))
        return True

    def counter_snapshot(self) -> dict:
        return {
            "appends": self.appends,
            "syncs": self.syncs,
            "snapshots": self.snapshots,
            "snapshot_failures": self.snapshot_failures,
            "degraded": self.degraded,
        }
