"""Link-layer frames.

A frame addresses a destination machine id (MID) or the special
``BROADCAST_MID`` recognized by every interface (§5.3).  The payload is an
opaque transport packet; the frame only needs to know how many bytes the
payload occupies on the wire to compute serialization delay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Special machine identifier recognized by all Megalink interfaces.
BROADCAST_MID = -1

#: Bits below the per-sender namespace in a distributed frame id.
FRAME_ID_SENDER_SHIFT = 32

#: Link+transport header size in bytes: source/destination MIDs, CRC,
#: alternating-bit state, packet-type flags, and the SODA tag (pattern,
#: requester signature, argument, buffer sizes).  See §6.11 on why the tag
#: is deliberately short.
FRAME_HEADER_BYTES = 24

_frame_ids = itertools.count(1)


def sender_frame_ids(mid: int) -> Iterator[int]:
    """Frame ids namespaced to one sender, for multi-process backends.

    The simulator's module-global counter guarantees unique frame ids
    within one process, and the causal engine joins ``kernel.tx`` to
    ``kernel.rx`` records by that id.  When each node is its own OS
    process (repro.netreal) every process would restart the counter at
    1, so the id carries the sender's MID in the high bits instead:
    ``(mid + 1) << FRAME_ID_SENDER_SHIFT | counter``.  The ``+ 1`` keeps
    every namespaced id above the plain counter range, so a merged
    trace can even coexist with simulator-issued ids.
    """
    if mid < 0:
        raise ValueError(f"sender MIDs are non-negative: {mid}")
    base = (mid + 1) << FRAME_ID_SENDER_SHIFT
    return (base | n for n in itertools.count(1))


@dataclass
class Frame:
    """One link-layer transmission."""

    src: int
    dst: int
    payload: Any
    payload_bytes: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST_MID

    @property
    def wire_bytes(self) -> int:
        return FRAME_HEADER_BYTES + self.payload_bytes

    def __repr__(self) -> str:
        dst = "BCAST" if self.is_broadcast else str(self.dst)
        return (
            f"<Frame #{self.frame_id} {self.src}->{dst} "
            f"{self.wire_bytes}B {self.payload!r}>"
        )
