"""Simulated local-area network substrate.

Models the paper's CompuNet Megalink: a 1 Mbit/s broadcast bus with CRC
error detection.  Frames carry transport packets between node kernels;
the bus serializes transmissions, applies propagation delay, and applies
an injectable fault model (loss, CRC corruption).
"""

from repro.net.errors import FaultPlan
from repro.net.frame import BROADCAST_MID, Frame, sender_frame_ids
from repro.net.medium import BroadcastBus
from repro.net.nic import NetworkInterface

__all__ = [
    "BROADCAST_MID",
    "BroadcastBus",
    "FaultPlan",
    "Frame",
    "NetworkInterface",
    "sender_frame_ids",
]
