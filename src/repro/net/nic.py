"""The per-node network interface.

The Megalink interface screens on destination MID in hardware (cheap,
single comparison — §6.12) and hands accepted frames to the kernel.  The
kernel registers an ``on_frame`` callback; an interface with no kernel
attached (a powered-off node) silently discards traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.frame import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.medium import BroadcastBus


class NetworkInterface:
    """One node's attachment point to the bus."""

    def __init__(self, bus: "BroadcastBus", mid: int) -> None:
        if mid < 0:
            raise ValueError("MIDs are non-negative (negative is broadcast)")
        self.bus = bus
        self.mid = mid
        self.on_frame: Optional[Callable[[Frame], None]] = None
        self.enabled = True
        self.frames_received = 0
        self.frames_sent = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        bus.attach(self)

    def send(self, dst: int, payload: Any, payload_bytes: int = 0) -> Frame:
        """Queue a frame onto the bus; returns the frame for tracing."""
        frame = Frame(self.mid, dst, payload, payload_bytes)
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        self.bus.send(frame)
        return frame

    def deliver(self, frame: Frame) -> None:
        """Called by the bus when a frame addressed here arrives intact."""
        if not self.enabled or self.on_frame is None:
            return
        self.frames_received += 1
        self.bytes_received += frame.wire_bytes
        self.on_frame(frame)
