"""Fault injection for the bus.

The paper assumes the kernel "can detect errors due to transient
subnetwork problems such as packet collisions or noise-induced errors and
that a packet retransmitted enough times will eventually arrive
undamaged" (§3.3).  A :class:`FaultPlan` injects exactly those transient
faults: probabilistic loss, probabilistic CRC corruption (discarded at the
receiver, indistinguishable from loss to the protocol), plus deterministic
hooks used by tests to script specific scenarios (e.g. the Delta-t figure).
"""

from __future__ import annotations

from typing import Callable, List

from repro.net.frame import Frame


class FaultPlan:
    """Decides, per frame and per receiver, whether delivery succeeds."""

    def __init__(
        self,
        loss_probability: float = 0.0,
        corruption_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability out of range")
        if not 0.0 <= corruption_probability <= 1.0:
            raise ValueError("corruption_probability out of range")
        self.loss_probability = loss_probability
        self.corruption_probability = corruption_probability
        self._drop_predicates: List[Callable[[Frame, int], bool]] = []
        self._drops_remaining = 0
        self.frames_lost = 0
        self.frames_corrupted = 0
        self.frames_scripted_drops = 0

    # -- deterministic scripting ------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        """Silently drop the next ``count`` frame deliveries."""
        self._drops_remaining += count

    def add_drop_predicate(self, predicate: Callable[[Frame, int], bool]) -> None:
        """Drop any delivery for which ``predicate(frame, receiver_mid)``.

        Predicates persist until removed; tests use them to e.g. sever one
        direction of a link or to kill all traffic from a "crashed" node.
        """
        self._drop_predicates.append(predicate)

    def remove_drop_predicate(
        self, predicate: Callable[[Frame, int], bool]
    ) -> None:
        self._drop_predicates.remove(predicate)

    def clear_predicates(self) -> None:
        self._drop_predicates.clear()

    # -- the verdict ---------------------------------------------------------

    def delivers(self, frame: Frame, receiver_mid: int, rng) -> bool:
        """True iff this frame should reach this receiver intact.

        ``rng`` is a ``random.Random`` stream owned by the bus so draws are
        reproducible and ordered.
        """
        if self._drops_remaining > 0:
            self._drops_remaining -= 1
            self.frames_scripted_drops += 1
            return False
        for predicate in self._drop_predicates:
            if predicate(frame, receiver_mid):
                self.frames_scripted_drops += 1
                return False
        if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
            self.frames_lost += 1
            return False
        if (
            self.corruption_probability > 0.0
            and rng.random() < self.corruption_probability
        ):
            # A corrupted frame fails the Megalink CRC and is discarded by
            # the receiving interface -- same observable effect as loss.
            self.frames_corrupted += 1
            return False
        return True
