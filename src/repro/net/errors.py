"""Fault injection for the bus.

The paper assumes the kernel "can detect errors due to transient
subnetwork problems such as packet collisions or noise-induced errors and
that a packet retransmitted enough times will eventually arrive
undamaged" (§3.3).  A :class:`FaultPlan` injects exactly those transient
faults: probabilistic loss, probabilistic CRC corruption (discarded at the
receiver, indistinguishable from loss to the protocol), plus deterministic
hooks used by tests to script specific scenarios (e.g. the Delta-t figure
and the chaos harness).

Scripted drops (:meth:`FaultPlan.drop_next` and
:meth:`FaultPlan.drop_matching`) operate **per frame**: one broadcast
frame on an N-node bus is one scripted event, consumes one unit of
budget, and is dropped for every receiver.  Probabilistic loss and
corruption are intentionally evaluated **per receiver** — on a real
broadcast bus, noise at one interface does not imply noise at another,
so a broadcast may be lost for some receivers and arrive at others;
``frames_lost``/``frames_corrupted`` therefore count *deliveries*
discarded, not wire frames.  Drop *predicates* also see each
``(frame, receiver)`` pair because partitions are inherently
receiver-specific; their counter (``deliveries_predicate_dropped``) is
likewise per delivery.

Beyond losing deliveries, a plan can *duplicate* or *reorder* them
(ISSUE 9): real datagram fabrics replay frames (link-layer retransmit
glitches, route flaps) and overtake them (multipath).  Both are
evaluated per receiver after the drop verdict: a duplicated delivery
arrives intact twice — the second copy ``duplicate_delay_us`` later —
and a reordered delivery is held back ``reorder_extra_us`` so frames
sent after it overtake it on the wire.  The protocol must shrug at
both: transaction IDs make duplicates idempotent and sequence/epoch
checks make stale arrivals harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.net.frame import Frame

#: A predicate over one delivery attempt: ``(frame, receiver_mid)``.
DropPredicate = Callable[[Frame, int], bool]

#: A predicate over one wire frame (receiver-independent).
FramePredicate = Callable[[Frame], bool]


@dataclass
class _ScriptedStrike:
    """Drop ``count`` frames matching ``predicate`` after ``skip`` matches.

    Evaluated once per wire frame (see module docstring); used by tests
    and the chaos harness for strikes like "drop the 3rd ACCEPT reply".
    """

    predicate: FramePredicate
    count: int = 1
    skip: int = 0

    @property
    def exhausted(self) -> bool:
        return self.count <= 0


class FaultPlan:
    """Decides, per frame and per receiver, whether delivery succeeds."""

    def __init__(
        self,
        loss_probability: float = 0.0,
        corruption_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_probability: float = 0.0,
        duplicate_delay_us: float = 150.0,
        reorder_extra_us: float = 400.0,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability out of range")
        if not 0.0 <= corruption_probability <= 1.0:
            raise ValueError("corruption_probability out of range")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability out of range")
        if not 0.0 <= reorder_probability <= 1.0:
            raise ValueError("reorder_probability out of range")
        self.loss_probability = loss_probability
        self.corruption_probability = corruption_probability
        self.duplicate_probability = duplicate_probability
        self.reorder_probability = reorder_probability
        self.duplicate_delay_us = duplicate_delay_us
        self.reorder_extra_us = reorder_extra_us
        self._drop_predicates: List[DropPredicate] = []
        self._drops_remaining = 0
        self._strikes: List[_ScriptedStrike] = []
        #: Memoized scripted verdict for the frame currently being
        #: delivered, so a broadcast consumes scripted budget once no
        #: matter how many receivers it fans out to.
        self._scripted_memo: Optional[Tuple[int, bool]] = None
        #: Deliveries discarded by probabilistic loss / corruption
        #: (per receiver; see module docstring).
        self.frames_lost = 0
        self.frames_corrupted = 0
        #: Wire frames discarded by scripted drops (per frame).
        self.frames_scripted_drops = 0
        #: Deliveries discarded by drop predicates (per receiver).
        self.deliveries_predicate_dropped = 0
        #: Deliveries that arrived twice / were held back (per receiver).
        self.deliveries_duplicated = 0
        self.deliveries_reordered = 0

    # -- deterministic scripting ------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        """Silently drop the next ``count`` wire frames (all receivers)."""
        self._drops_remaining += count

    def drop_matching(
        self,
        predicate: FramePredicate,
        count: int = 1,
        skip: int = 0,
    ) -> None:
        """Drop ``count`` frames matching ``predicate``, after letting
        ``skip`` matching frames through first.

        The predicate sees the wire frame only (not the receiver); a
        matching broadcast is dropped for every receiver and consumes
        one unit of ``count``.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if skip < 0:
            raise ValueError("skip must be >= 0")
        self._strikes.append(_ScriptedStrike(predicate, count=count, skip=skip))

    def add_drop_predicate(self, predicate: DropPredicate) -> None:
        """Drop any delivery for which ``predicate(frame, receiver_mid)``.

        Predicates persist until removed; tests use them to e.g. sever one
        direction of a link or to kill all traffic from a "crashed" node.
        """
        self._drop_predicates.append(predicate)

    def remove_drop_predicate(self, predicate: DropPredicate) -> None:
        self._drop_predicates.remove(predicate)

    def clear_predicates(self) -> None:
        self._drop_predicates.clear()

    @property
    def scripted_drops_pending(self) -> bool:
        """Any armed drop_next budget or unexhausted strike?"""
        return self._drops_remaining > 0 or any(
            not strike.exhausted for strike in self._strikes
        )

    # -- the verdict ---------------------------------------------------------

    def _scripted_drop(self, frame: Frame) -> bool:
        """Per-frame scripted verdict, memoized on ``frame.frame_id``."""
        if self._scripted_memo is not None and (
            self._scripted_memo[0] == frame.frame_id
        ):
            return self._scripted_memo[1]
        verdict = False
        if self._drops_remaining > 0:
            self._drops_remaining -= 1
            verdict = True
        else:
            for strike in self._strikes:
                if strike.exhausted or not strike.predicate(frame):
                    continue
                if strike.skip > 0:
                    strike.skip -= 1
                    continue
                strike.count -= 1
                verdict = True
                break
        if verdict:
            self.frames_scripted_drops += 1
        self._scripted_memo = (frame.frame_id, verdict)
        return verdict

    def delivers(self, frame: Frame, receiver_mid: int, rng) -> bool:
        """True iff this frame should reach this receiver intact.

        ``rng`` is a ``random.Random`` stream owned by the bus so draws are
        reproducible and ordered.
        """
        if self._scripted_drop(frame):
            return False
        for predicate in self._drop_predicates:
            if predicate(frame, receiver_mid):
                self.deliveries_predicate_dropped += 1
                return False
        if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
            self.frames_lost += 1
            return False
        if (
            self.corruption_probability > 0.0
            and rng.random() < self.corruption_probability
        ):
            # A corrupted frame fails the Megalink CRC and is discarded by
            # the receiving interface -- same observable effect as loss.
            self.frames_corrupted += 1
            return False
        return True

    def delivery_delays(self, frame: Frame, receiver_mid: int, rng):
        """Extra-delay offsets (µs) for one *surviving* delivery.

        Called only after :meth:`delivers` said yes.  ``[0.0]`` is the
        normal case; a duplicated delivery adds a second, later copy and
        a reordered delivery holds its single copy back so frames sent
        after it overtake it.  Duplication wins if both fire — a
        duplicate whose first copy is also late is indistinguishable
        from one late copy plus one duplicate, so we keep the verdicts
        disjoint and the accounting unambiguous.
        """
        if (
            self.duplicate_probability > 0.0
            and rng.random() < self.duplicate_probability
        ):
            self.deliveries_duplicated += 1
            return [0.0, self.duplicate_delay_us]
        if (
            self.reorder_probability > 0.0
            and rng.random() < self.reorder_probability
        ):
            self.deliveries_reordered += 1
            return [self.reorder_extra_us]
        return [0.0]
