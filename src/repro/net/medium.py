"""The broadcast bus.

All nodes share one medium.  A transmission holds the bus for its
serialization time (wire bytes at the configured bandwidth); concurrent
send attempts queue FIFO — this folds the Megalink's arbitration/backoff
into a deterministic bounded wait, which is what matters for the paper's
guarantee that ACCEPT completes in bounded time (§6.10).  After
serialization plus propagation delay the frame is offered to the addressed
interface (or, for broadcasts, every other interface); the fault plan may
discard any individual delivery.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.net.errors import FaultPlan
from repro.net.frame import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import NetworkInterface
    from repro.sim.engine import Simulator


class BroadcastBus:
    """Shared 1 Mbit/s broadcast medium (CompuNet Megalink stand-in)."""

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: int = 1_000_000,
        propagation_us: float = 5.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_us = propagation_us
        self.faults = faults or FaultPlan()
        self._interfaces: Dict[int, "NetworkInterface"] = {}
        self._pending: Deque[Frame] = deque()
        self._busy = False
        self.frames_sent = 0
        self.bytes_sent = 0
        self.busy_time_us = 0.0
        self.peak_queue_depth = 0

    # -- topology -----------------------------------------------------------

    def attach(self, nic: "NetworkInterface") -> None:
        if nic.mid in self._interfaces:
            raise ValueError(f"MID {nic.mid} already attached")
        self._interfaces[nic.mid] = nic

    def detach(self, mid: int) -> None:
        self._interfaces.pop(mid, None)

    def interface(self, mid: int) -> Optional["NetworkInterface"]:
        return self._interfaces.get(mid)

    @property
    def mids(self):
        return sorted(self._interfaces)

    # -- transmission ---------------------------------------------------------

    def serialization_us(self, frame: Frame) -> float:
        """Time the frame occupies the wire."""
        return frame.wire_bytes * 8.0 * 1_000_000.0 / self.bandwidth_bps

    def send(self, frame: Frame) -> None:
        """Queue a frame for transmission (returns immediately)."""
        self._pending.append(frame)
        if len(self._pending) > self.peak_queue_depth:
            self.peak_queue_depth = len(self._pending)
        if not self._busy:
            self._transmit_next()

    @property
    def queue_depth(self) -> int:
        """Frames waiting for the bus right now."""
        return len(self._pending)

    def utilization(self, now_us: float) -> float:
        """Fraction of elapsed time the bus spent serializing frames."""
        if now_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / now_us)

    def _transmit_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        frame = self._pending.popleft()
        tx_time = self.serialization_us(frame)
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        self.busy_time_us += tx_time
        self.sim.trace.record(
            self.sim.now,
            "net.tx",
            src=frame.src,
            dst=frame.dst,
            bytes=frame.wire_bytes,
            frame_id=frame.frame_id,
        )
        self.sim.schedule(tx_time, self._finish_transmission, frame)

    def _finish_transmission(self, frame: Frame) -> None:
        self.sim.schedule(self.propagation_us, self._deliver, frame)
        self._transmit_next()

    def _deliver(self, frame: Frame) -> None:
        rng = self.sim.rng.stream("bus.faults")
        if frame.is_broadcast:
            receivers = [
                nic for mid, nic in sorted(self._interfaces.items())
                if mid != frame.src
            ]
        else:
            nic = self._interfaces.get(frame.dst)
            # Unicast frames addressed to an absent interface vanish: MID
            # screening happens in interface hardware (§6.12).
            receivers = [nic] if nic is not None else []
        for nic in receivers:
            if self.faults.delivers(frame, nic.mid, rng):
                delays = self.faults.delivery_delays(frame, nic.mid, rng)
                for delay in delays:
                    if delay <= 0.0:
                        nic.deliver(frame)
                    else:
                        # A duplicated or held-back copy: same intact
                        # frame, later arrival.  `schedule` keeps the
                        # NIC callable even if it detaches meanwhile
                        # (deliver() checks `enabled` itself).
                        self.sim.schedule(delay, nic.deliver, frame)
                if len(delays) != 1 or delays[0] > 0.0:
                    self.sim.trace.record(
                        self.sim.now,
                        "net.replay",
                        src=frame.src,
                        dst=nic.mid,
                        frame_id=frame.frame_id,
                        kind="dup" if len(delays) > 1 else "reorder",
                    )
            else:
                self.sim.trace.record(
                    self.sim.now,
                    "net.drop",
                    src=frame.src,
                    dst=nic.mid,
                    frame_id=frame.frame_id,
                )
